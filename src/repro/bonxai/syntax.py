"""Object model for concrete BonXai schemas (the five blocks of Section 3.1).

A :class:`BonXaiSchema` mirrors the surface language: the namespace block,
the global block (allowed roots), the optional groups block, the grammar
block (the ordered rules), and the optional constraints block.  Parsing
lives in :mod:`repro.bonxai.parser`, lowering to the formal core in
:mod:`repro.bonxai.compile`, and rendering in :mod:`repro.bonxai.printer`.
"""

from __future__ import annotations

from repro.bonxai.ancestor import AncestorPattern
from repro.errors import SchemaError


class GrammarRule:
    """One rule of the grammar block: ``<ancestor pattern> = <child pattern>``.

    Attributes:
        ancestor: an :class:`~repro.bonxai.ancestor.AncestorPattern`.
        child: a :class:`~repro.bonxai.child.ChildPattern`.
    """

    __slots__ = ("ancestor", "child")

    def __init__(self, ancestor, child):
        if isinstance(ancestor, str):
            ancestor = AncestorPattern(ancestor)
        self.ancestor = ancestor
        self.child = child

    @property
    def is_attribute_rule(self):
        """True for simple-type assignments like ``@size = {type xs:integer}``."""
        return self.ancestor.is_attribute_pattern

    def __repr__(self):
        return f"GrammarRule({self.ancestor.text!r} = ...)"


class Constraint:
    """One integrity constraint (unique / key / keyref), as in XML Schema.

    Attributes:
        kind: ``"unique"``, ``"key"``, or ``"keyref"``.
        name: the constraint's name (optional for ``unique``).
        selector: an :class:`AncestorPattern` selecting the constrained
            nodes.
        fields: tuple of attribute names whose value tuples are constrained.
        refers: for ``keyref``: the name of the referenced key.
    """

    __slots__ = ("kind", "name", "selector", "fields", "refers")

    def __init__(self, kind, selector, fields, name=None, refers=None):
        if kind not in ("unique", "key", "keyref"):
            raise SchemaError(f"unknown constraint kind {kind!r}")
        if kind == "keyref" and refers is None:
            raise SchemaError("keyref constraints must name the key they refer to")
        if kind != "keyref" and refers is not None:
            raise SchemaError(f"{kind} constraints take no 'refers' clause")
        if kind in ("key", "keyref") and name is None:
            raise SchemaError(f"{kind} constraints must be named")
        if isinstance(selector, str):
            selector = AncestorPattern(selector)
        self.kind = kind
        self.name = name
        self.selector = selector
        self.fields = tuple(fields)
        self.refers = refers

    def __repr__(self):
        return f"Constraint({self.kind} {self.name or ''} {self.selector.text})"


class BonXaiSchema:
    """A concrete BonXai schema (all five blocks).

    Attributes:
        target_namespace: the ``target namespace`` URI, or ``None``.
        namespaces: dict prefix -> URI from ``namespace`` declarations.
        global_names: list of allowed root element names (global block).
        groups: dict name -> child-pattern body AST (element groups).
        attribute_groups: dict name -> list of ``(attr_name, required)``.
        rules: ordered list of :class:`GrammarRule` (priority: last wins).
        constraints: list of :class:`Constraint`.
        simple_types: dict name -> :class:`~repro.bonxai.usertypes.SimpleTypeDef`
            (native simple types -- the Section 5 extension).
    """

    def __init__(self, global_names, rules, groups=None,
                 attribute_groups=None, constraints=None,
                 target_namespace=None, namespaces=None,
                 simple_types=None):
        self.target_namespace = target_namespace
        self.namespaces = dict(namespaces or {})
        self.global_names = list(global_names)
        self.groups = dict(groups or {})
        self.attribute_groups = dict(attribute_groups or {})
        self.rules = list(rules)
        self.constraints = list(constraints or [])
        self.simple_types = dict(simple_types or {})
        if not self.global_names:
            raise SchemaError("the global block must name at least one root")

    # -- derived ---------------------------------------------------------
    def element_rules(self):
        """The grammar rules that constrain elements (not attribute rules)."""
        return [rule for rule in self.rules if not rule.is_attribute_rule]

    def attribute_rules(self):
        """The simple-type assignment rules (``@name = {type ...}``)."""
        return [rule for rule in self.rules if rule.is_attribute_rule]

    def element_names(self):
        """Every element name mentioned anywhere in the schema."""
        names = set(self.global_names)
        for rule in self.rules:
            names |= rule.ancestor.element_names
            names |= rule.child.element_names(self.groups)
        for constraint in self.constraints:
            names |= constraint.selector.element_names
        return frozenset(names)

    def compile(self):
        """Lower to the formal core; see :func:`repro.bonxai.compile.compile_schema`."""
        from repro.bonxai.compile import compile_schema

        return compile_schema(self)

    def __repr__(self):
        return (
            f"<BonXaiSchema roots={self.global_names} "
            f"rules={len(self.rules)} groups={len(self.groups)}>"
        )
