"""Minimal simple-type value checking for attribute rules.

The paper notes BonXai "cannot yet specify simple types natively" and
imports them from XML Schema; rules like ``@size = { type xs:integer }``
assign an imported simple type to attributes.  We implement value checks
for the common built-ins so the validator can enforce these assignments.
Unknown type names are accepted permissively (as the paper's tool does for
imported types it cannot resolve).
"""

from __future__ import annotations

import re as _re

_DATE_RE = _re.compile(r"^-?\d{4,}-\d{2}-\d{2}(Z|[+-]\d{2}:\d{2})?$")
_TIME_RE = _re.compile(r"^\d{2}:\d{2}:\d{2}(\.\d+)?(Z|[+-]\d{2}:\d{2})?$")
_NCNAME_RE = _re.compile(r"^[A-Za-z_][\w.-]*$")


def _is_integer(value):
    try:
        int(value.strip())
    except ValueError:
        return False
    return True


def _is_decimal(value):
    try:
        float(value.strip())
    except ValueError:
        return False
    return "e" not in value.lower() and "inf" not in value.lower()


def _is_boolean(value):
    return value.strip() in ("true", "false", "0", "1")


_CHECKS = {
    "string": lambda value: True,
    "anySimpleType": lambda value: True,
    "anyType": lambda value: True,
    "token": lambda value: value == " ".join(value.split()),
    "integer": _is_integer,
    "int": _is_integer,
    "long": _is_integer,
    "short": _is_integer,
    "byte": _is_integer,
    "positiveInteger": lambda value: _is_integer(value) and int(value) > 0,
    "nonNegativeInteger": lambda value: _is_integer(value) and int(value) >= 0,
    "negativeInteger": lambda value: _is_integer(value) and int(value) < 0,
    "decimal": _is_decimal,
    "double": _is_decimal,
    "float": _is_decimal,
    "boolean": _is_boolean,
    "date": lambda value: bool(_DATE_RE.match(value.strip())),
    "time": lambda value: bool(_TIME_RE.match(value.strip())),
    "NCName": lambda value: bool(_NCNAME_RE.match(value.strip())),
    "ID": lambda value: bool(_NCNAME_RE.match(value.strip())),
    "IDREF": lambda value: bool(_NCNAME_RE.match(value.strip())),
    "anyURI": lambda value: True,
}


def local_type_name(type_name):
    """Strip the namespace prefix: ``xs:integer`` -> ``integer``."""
    return type_name.split(":", 1)[-1] if ":" in type_name else type_name


def is_known_type(type_name):
    """True iff we have a value check for this simple type."""
    return local_type_name(type_name) in _CHECKS


def check_value(type_name, value):
    """True iff ``value`` is a valid lexical form of the simple type.

    Unknown types accept every value (permissive, like imported types whose
    definitions are unavailable).
    """
    checker = _CHECKS.get(local_type_name(type_name))
    if checker is None:
        return True
    return checker(value)
