"""BonXai — combining the simplicity of DTD with the expressiveness of
XML Schema (reproduction of Martens, Neven, Niewerth & Schwentick,
PODS 2015).

Quickstart::

    from repro import parse_bonxai, compile_schema, parse_document

    schema = compile_schema(parse_bonxai(BONXAI_TEXT))
    report = schema.validate(parse_document(XML_TEXT))
    assert report.valid

Package map:

* :mod:`repro.bonxai`      — the language: formal core (BXSD), parser,
  compiler, printer, validator, linter
* :mod:`repro.xsd`         — formal XSDs, DFA-based XSDs, ``.xsd`` I/O,
  validation, minimization, equivalence
* :mod:`repro.translation` — Algorithms 1-4, k-suffix fragment, DTDs
* :mod:`repro.regex`       — deterministic regular expressions engine
* :mod:`repro.automata`    — NFA/DFA substrate
* :mod:`repro.xmlmodel`    — XML trees, parser, writer, DTDs
* :mod:`repro.families`    — Theorem 8/9 worst-case families
* :mod:`repro.corpus`      — the synthetic web-XSD study (Section 4.4)
* :mod:`repro.paperdata`   — Figures 1-5 of the paper
* :mod:`repro.observability` — metrics registry + resource budgets
* :mod:`repro.resilience`  — parsing limits, failure policies, fault
  injection (hardening against hostile input)
* :mod:`repro.diff`        — schema diff: per-element-type difference
  certificates with k-piecewise-testable separators
"""

from repro.bonxai import (
    BXSD,
    BonXaiSchema,
    Rule,
    bxsd_to_schema,
    compile_schema,
    lint_bxsd,
    parse_bonxai,
    print_schema,
)
from repro.errors import (
    BudgetExceeded,
    EDCViolation,
    NotDeterministicError,
    NotKSuffixError,
    ParseError,
    RegexError,
    ReproError,
    SchemaError,
    TranslationError,
    ValidationError,
)
from repro.observability import (
    MetricsRegistry,
    ResourceBudget,
    default_registry,
)
from repro.resilience import (
    DocumentOutcome,
    FailurePolicy,
    FaultInjector,
    ParserLimits,
    RetryPolicy,
)
from repro.translation import (
    bxsd_to_dfa_based,
    bxsd_to_xsd,
    detect_k_suffix,
    dfa_based_to_bxsd,
    dfa_based_to_xsd,
    dtd_to_bxsd,
    dtd_to_xsd,
    xsd_to_bxsd,
    xsd_to_dfa_based,
)
from repro.xmlmodel import (
    XMLDocument,
    XMLElement,
    element,
    parse_document,
    parse_dtd,
    write_document,
)
from repro.diff import SchemaDiff, schema_diff
from repro.xsd import (
    XSD,
    ContentModel,
    DFABasedXSD,
    TypedName,
    dfa_xsd_equivalent,
    generate_document,
    minimize_xsd,
    read_xsd,
    validate_xsd,
    write_xsd,
    xsd_equivalent,
)

__version__ = "1.0.0"

__all__ = [
    "BXSD",
    "BonXaiSchema",
    "BudgetExceeded",
    "ContentModel",
    "DFABasedXSD",
    "DocumentOutcome",
    "EDCViolation",
    "FailurePolicy",
    "FaultInjector",
    "MetricsRegistry",
    "ResourceBudget",
    "NotDeterministicError",
    "NotKSuffixError",
    "ParseError",
    "ParserLimits",
    "RegexError",
    "RetryPolicy",
    "ReproError",
    "Rule",
    "SchemaDiff",
    "SchemaError",
    "TranslationError",
    "TypedName",
    "ValidationError",
    "XMLDocument",
    "XMLElement",
    "XSD",
    "bxsd_to_dfa_based",
    "bxsd_to_schema",
    "bxsd_to_xsd",
    "compile_schema",
    "default_registry",
    "detect_k_suffix",
    "dfa_based_to_bxsd",
    "dfa_based_to_xsd",
    "dfa_xsd_equivalent",
    "dtd_to_bxsd",
    "dtd_to_xsd",
    "element",
    "generate_document",
    "lint_bxsd",
    "minimize_xsd",
    "parse_bonxai",
    "parse_document",
    "parse_dtd",
    "print_schema",
    "read_xsd",
    "schema_diff",
    "validate_xsd",
    "write_document",
    "write_xsd",
    "xsd_equivalent",
    "xsd_to_bxsd",
    "xsd_to_dfa_based",
]
