"""Observability: metrics and resource budgets for the serving stack.

Two orthogonal facilities, both dependency-free and thread-safe:

* :mod:`repro.observability.metrics` — counters, gauges, histograms with
  ns-resolution timers, collected in a :class:`MetricsRegistry` that
  snapshots to dict/JSON.  The engine, translation square, CLI
  (``--metrics``), and benchmark harness all publish here.
* :mod:`repro.observability.budget` — :class:`ResourceBudget` caps
  wall-clock time, automaton states, and intermediate regex size in the
  provably-exponential constructions, raising
  :class:`~repro.errors.BudgetExceeded` with partial-progress stats
  instead of hanging (Theorems 8/9 guarantee adversarial inputs exist).
"""

from repro.errors import BudgetExceeded
from repro.observability.budget import (
    ResourceBudget,
    current_budget,
    resolve_budget,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    resolve_registry,
)

__all__ = [
    "BudgetExceeded",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ResourceBudget",
    "current_budget",
    "default_registry",
    "resolve_budget",
    "resolve_registry",
]
