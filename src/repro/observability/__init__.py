"""Observability: metrics, budgets, tracing, and provenance.

Four orthogonal facilities, all dependency-free and thread-safe:

* :mod:`repro.observability.metrics` — counters, gauges, histograms with
  ns-resolution timers, collected in a :class:`MetricsRegistry` that
  snapshots to dict/JSON (one consistent point-in-time cut across all
  instruments) and exports as Prometheus text
  (:mod:`repro.observability.export`).
* :mod:`repro.observability.budget` — :class:`ResourceBudget` caps
  wall-clock time, automaton states, and intermediate regex size in the
  provably-exponential constructions, raising
  :class:`~repro.errors.BudgetExceeded` with partial-progress stats
  instead of hanging (Theorems 8/9 guarantee adversarial inputs exist).
* :mod:`repro.observability.tracing` — hierarchical :class:`Span` trees
  with ns timing, attributes, and status, collected by an ambiently
  installable :class:`Tracer` and exported as JSONL; one shared no-op
  span when disabled (the CLI's ``--trace FILE``).
* :mod:`repro.observability.provenance` — per-element validation
  provenance (winning rule index, XSD type, content-DFA state path,
  first-divergence explanations) and :class:`RuleCoverage` accounting
  (the CLI's ``explain`` subcommand and the linter's coverage mode).
"""

from repro.errors import BudgetExceeded
from repro.observability.budget import (
    ResourceBudget,
    current_budget,
    resolve_budget,
)
from repro.observability.export import (
    escape_label_value,
    labeled,
    render_metrics,
    to_prometheus,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    resolve_registry,
)
from repro.observability.provenance import (
    DocumentExplanation,
    ElementProvenance,
    ProvenanceRecorder,
    RuleCoverage,
    explain_document,
    first_divergence,
)
from repro.observability.ringfile import (
    RingFileWriter,
    read_ring,
)
from repro.observability.tracing import (
    NULL_SPAN,
    Span,
    TailSampler,
    Tracer,
    current_baggage,
    current_span,
    current_tracer,
    format_traceparent,
    installed_tracer,
    new_trace_id,
    parse_traceparent,
    resolve_tracer,
    set_baggage,
    span,
    trace_id_hex,
)

__all__ = [
    "BudgetExceeded",
    "Counter",
    "DocumentExplanation",
    "ElementProvenance",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "ProvenanceRecorder",
    "ResourceBudget",
    "RingFileWriter",
    "RuleCoverage",
    "Span",
    "TailSampler",
    "Tracer",
    "current_baggage",
    "current_budget",
    "current_span",
    "current_tracer",
    "default_registry",
    "escape_label_value",
    "explain_document",
    "first_divergence",
    "format_traceparent",
    "installed_tracer",
    "labeled",
    "new_trace_id",
    "parse_traceparent",
    "read_ring",
    "render_metrics",
    "resolve_budget",
    "resolve_registry",
    "resolve_tracer",
    "set_baggage",
    "span",
    "to_prometheus",
    "trace_id_hex",
]
