"""A size-capped, rotating JSONL line writer (the on-disk "ring").

Long-running processes stream observability records — spans, retained
traces, access-log lines — to disk, and an unbounded append-only file is
an operational hazard: a conformance sweep with ``--trace FILE`` or a
serve daemon under sustained traffic would eventually fill the volume.
:class:`RingFileWriter` bounds the damage the way log rotation does:
lines append to ``path`` until it would exceed ``max_bytes``, then the
file rotates (``path`` → ``path.1`` → ``path.2`` …, oldest deleted) and
writing continues in a fresh ``path``.  Total disk use is therefore at
most ``max_bytes * (backups + 1)`` plus one line of slack.

Design points:

* **Line-atomic.**  One :meth:`write` call is one line; rotation happens
  *between* lines, never inside one, so every generation of the ring is
  independently parseable JSONL.
* **Thread-safe.**  One lock around size accounting + write; callers on
  worker threads (trace sinks fire from whatever thread ends the span)
  need no coordination.
* **Tail-able.**  The handle is opened line-buffered, so ``tail -f``
  and the smoke tests observe lines as they are written.
* **Crash-tolerant.**  Opening an existing ``path`` appends and resumes
  the size accounting from the file's current length.

:func:`read_ring` is the matching reader: it yields the parsed records
of every surviving generation, oldest first, skipping torn/corrupt
lines instead of failing — the ring is a diagnostic artifact, and a
half-written final line must not make the whole history unreadable.
"""

from __future__ import annotations

import json
import os
import threading

#: Default per-generation cap — generous for diagnostics, small enough
#: that a forgotten daemon cannot fill a volume (total = cap * 2).
DEFAULT_MAX_BYTES = 16 * 1024 * 1024


class RingFileWriter:
    """Append JSON records (or pre-encoded lines) with bounded disk use.

    Args:
        path: the current-generation file; rotations live alongside it
            as ``path.1`` … ``path.<backups>``.
        max_bytes: size that triggers rotation (a single line larger
            than the cap is still written whole — line atomicity wins).
        backups: rotated generations kept (``0`` truncates in place).
    """

    def __init__(self, path, max_bytes=DEFAULT_MAX_BYTES, backups=1):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8", buffering=1)
        self._size = self._handle.tell()
        self.rotations = 0

    def write(self, record):
        """Append one record as a JSONL line (rotating first if needed).

        ``record`` may be any JSON-serializable object, or a ready
        ``str`` line (trailing newline optional).
        """
        if isinstance(record, str):
            line = record if record.endswith("\n") else record + "\n"
        else:
            line = json.dumps(record, sort_keys=True) + "\n"
        encoded = len(line.encode("utf-8"))
        with self._lock:
            if self._size and self._size + encoded > self.max_bytes:
                self._rotate_locked()
            self._handle.write(line)
            self._size += encoded

    def _rotate_locked(self):
        self._handle.close()
        if self.backups == 0:
            self._handle = open(
                self.path, "w", encoding="utf-8", buffering=1
            )
        else:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.backups - 1, 0, -1):
                source = f"{self.path}.{index}"
                if os.path.exists(source):
                    os.replace(source, f"{self.path}.{index + 1}")
            os.replace(self.path, f"{self.path}.1")
            self._handle = open(
                self.path, "w", encoding="utf-8", buffering=1
            )
        self._size = 0
        self.rotations += 1

    def flush(self):
        with self._lock:
            self._handle.flush()

    def close(self):
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return (
            f"RingFileWriter({self.path!r}, max_bytes={self.max_bytes}, "
            f"backups={self.backups}, rotations={self.rotations})"
        )


def ring_paths(path):
    """Every surviving generation of a ring, oldest first."""
    path = os.fspath(path)
    generations = []
    index = 1
    while os.path.exists(f"{path}.{index}"):
        generations.append(f"{path}.{index}")
        index += 1
    ordered = list(reversed(generations))
    if os.path.exists(path):
        ordered.append(path)
    return ordered


def read_ring(path):
    """Yield the parsed JSON records of a ring, oldest line first.

    Unparseable lines (a torn final line after a crash, a truncated
    rotation) are skipped, not raised.
    """
    for generation in ring_paths(path):
        with open(generation, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue
