"""Metrics exporters: Prometheus text format and JSON.

Spans export as JSONL (:meth:`~repro.observability.tracing.Tracer.
write_jsonl`); this module gives :class:`~repro.observability.
MetricsRegistry` the matching one-call export story.  Both exporters
render one consistent :meth:`~repro.observability.MetricsRegistry.
snapshot` (a single point-in-time cut across all instruments).

The Prometheus rendering follows the text exposition format:

* dotted instrument names map to legal metric names (``engine.cache.hits``
  becomes ``engine_cache_hits``);
* counters and gauges emit one ``# TYPE`` line per metric family and one
  sample per series;
* histograms emit cumulative ``_bucket{le="..."}`` samples derived from
  the power-of-two buckets (the upper bound of ``<=2^k`` is ``2**k``),
  plus the mandatory ``+Inf`` bucket, ``_sum``, and ``_count``.

**Labels.**  The registry itself is label-unaware (instruments are keyed
by one flat name); labelled series are encoded *into* the name by
:func:`labeled`::

    registry.counter(labeled("serve.requests", tenant=tenant, code=200))

``labeled`` escapes the label *values* per the exposition format at
construction time (backslash ``\\``, double quote ``\"``, newline
``\\n`` — tenant ids and schema fingerprints are attacker-influenced
strings in serve mode, and an unescaped newline would let one tenant
forge arbitrary scrape lines), sanitizes the label *names*, and sorts
them, so two call sites labelling in different orders share one series.
The exporter groups all series of a family under a single ``# TYPE``
line, as the format requires.
"""

from __future__ import annotations

import re

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name):
    """A legal Prometheus metric name for a dotted instrument name."""
    sanitized = _NAME_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value):
    """Escape a label value per the Prometheus text exposition format.

    Order matters: backslashes first, or the escapes themselves would be
    re-escaped.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def labeled(name, **labels):
    """Encode a labelled series into one flat instrument name.

    The result is ``name{key="value",...}`` with keys sanitized and
    sorted and values already exposition-escaped, so the exporter can
    pass the label block through verbatim.  With no labels the name is
    returned unchanged.
    """
    if not labels:
        return name
    pairs = ",".join(
        f'{_LABEL_NAME_OK.sub("_", key)}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{pairs}}}"


def _split_labels(name):
    """Split an instrument name into (metric family, label block).

    The label block — everything from the first ``{`` — was escaped by
    :func:`labeled` at construction and passes through verbatim; only
    the family name is sanitized.
    """
    base, brace, rest = name.partition("{")
    return _metric_name(base), (brace + rest if brace else "")


def _exemplar_suffix(exemplar):
    """The OpenMetrics exemplar clause for one bucket sample.

    Rendered as `` # {label="value",...} value timestamp`` appended to
    the ``_bucket`` line, per the OpenMetrics exposition format; label
    values (trace ids are the common case) are exposition-escaped.
    """
    pairs = ",".join(
        f'{_LABEL_NAME_OK.sub("_", key)}="{escape_label_value(value)}"'
        for key, value in sorted(exemplar.get("labels", {}).items())
    )
    suffix = f" # {{{pairs}}} {exemplar['value']}"
    if exemplar.get("ts") is not None:
        suffix += f" {exemplar['ts']}"
    return suffix


def _histogram_lines(metric, labels, summary):
    lines = []
    # Merge ``le`` into an existing label block: {a="b"} -> {a="b",le=...}
    if labels:
        le_prefix = labels[:-1] + ","
    else:
        le_prefix = "{"
    exemplars = summary.get("exemplars", {})
    cumulative = 0
    for label, hits in summary["buckets"].items():
        exponent = int(label.split("^", 1)[1])
        cumulative += hits
        line = (
            f'{metric}_bucket{le_prefix}le="{float(2 ** exponent)}"}} '
            f"{cumulative}"
        )
        exemplar = exemplars.get(label)
        if exemplar is not None:
            line += _exemplar_suffix(exemplar)
        lines.append(line)
    lines.append(f'{metric}_bucket{le_prefix}le="+Inf"}} {summary["count"]}')
    lines.append(f"{metric}_sum{labels} {summary['total']}")
    lines.append(f"{metric}_count{labels} {summary['count']}")
    return lines


def _families(samples):
    """Group ``{instrument-name: value}`` into families, order-preserving.

    Returns ``[(family, [(label-block, value), ...]), ...]`` — all
    series of one family render adjacently under a single ``# TYPE``
    line, as the exposition format requires.
    """
    grouped = {}
    for name, value in samples.items():
        metric, labels = _split_labels(name)
        grouped.setdefault(metric, []).append((labels, value))
    return grouped.items()


def _escape_help(text):
    """Escape a ``# HELP`` string per the exposition format."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus(registry):
    """Render the registry snapshot in Prometheus text format.

    Families registered with a ``help=`` string get a ``# HELP`` line
    ahead of their ``# TYPE`` line; histogram buckets carrying exemplars
    render them in OpenMetrics exemplar syntax.
    """
    snapshot = registry.snapshot()
    helps = {
        _metric_name(family): text
        for family, text in getattr(registry, "help_texts", dict)().items()
    }
    lines = []

    def open_family(metric, kind):
        help_text = helps.get(metric)
        if help_text is not None:
            lines.append(f"# HELP {metric} {_escape_help(help_text)}")
        lines.append(f"# TYPE {metric} {kind}")

    for metric, series in _families(snapshot["counters"]):
        open_family(metric, "counter")
        for labels, value in series:
            lines.append(f"{metric}{labels} {value}")
    for metric, series in _families(snapshot["gauges"]):
        open_family(metric, "gauge")
        for labels, value in series:
            lines.append(f"{metric}{labels} {value}")
    for metric, series in _families(snapshot["histograms"]):
        open_family(metric, "histogram")
        for labels, summary in series:
            lines.extend(_histogram_lines(metric, labels, summary))
    return "\n".join(lines) + "\n" if lines else ""


def render_metrics(registry, fmt="json"):
    """Render the registry in ``fmt`` (``"json"`` or ``"prometheus"``)."""
    if fmt == "prometheus":
        return to_prometheus(registry)
    if fmt == "json":
        return registry.to_json()
    raise ValueError(f"unknown metrics format {fmt!r}")
