"""Metrics exporters: Prometheus text format and JSON.

Spans export as JSONL (:meth:`~repro.observability.tracing.Tracer.
write_jsonl`); this module gives :class:`~repro.observability.
MetricsRegistry` the matching one-call export story.  Both exporters
render one consistent :meth:`~repro.observability.MetricsRegistry.
snapshot` (a single point-in-time cut across all instruments).

The Prometheus rendering follows the text exposition format:

* dotted instrument names map to legal metric names (``engine.cache.hits``
  becomes ``engine_cache_hits``);
* counters and gauges emit one ``# TYPE`` line and one sample;
* histograms emit cumulative ``_bucket{le="..."}`` samples derived from
  the power-of-two buckets (the upper bound of ``<=2^k`` is ``2**k``),
  plus the mandatory ``+Inf`` bucket, ``_sum``, and ``_count``.
"""

from __future__ import annotations

import re

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name):
    """A legal Prometheus metric name for a dotted instrument name."""
    sanitized = _NAME_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _histogram_lines(metric, summary):
    lines = [f"# TYPE {metric} histogram"]
    cumulative = 0
    for label, hits in summary["buckets"].items():
        exponent = int(label.split("^", 1)[1])
        cumulative += hits
        lines.append(
            f'{metric}_bucket{{le="{float(2 ** exponent)}"}} {cumulative}'
        )
    lines.append(f'{metric}_bucket{{le="+Inf"}} {summary["count"]}')
    lines.append(f"{metric}_sum {summary['total']}")
    lines.append(f"{metric}_count {summary['count']}")
    return lines


def to_prometheus(registry):
    """Render the registry snapshot in Prometheus text format."""
    snapshot = registry.snapshot()
    lines = []
    for name, value in snapshot["counters"].items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot["gauges"].items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, summary in snapshot["histograms"].items():
        lines.extend(_histogram_lines(_metric_name(name), summary))
    return "\n".join(lines) + "\n" if lines else ""


def render_metrics(registry, fmt="json"):
    """Render the registry in ``fmt`` (``"json"`` or ``"prometheus"``)."""
    if fmt == "prometheus":
        return to_prometheus(registry)
    if fmt == "json":
        return registry.to_json()
    raise ValueError(f"unknown metrics format {fmt!r}")
