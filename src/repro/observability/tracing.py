"""Hierarchical tracing spans for the engine and the translation square.

Metrics (PR 2) say *how much*; spans say *where the time went*.  A
:class:`Span` is one timed region of work — nanosecond start/end from
``perf_counter_ns``, free-form attributes, an ``ok``/``error`` status, and
a parent id linking it into a tree — and a :class:`Tracer` collects
finished spans into a bounded ring buffer plus per-name aggregate
summaries, exporting them as JSONL (one span object per line).

The installation idiom mirrors :class:`~repro.observability.ResourceBudget`
and :class:`~repro.resilience.FaultInjector`: enter a tracer to install it
ambiently for a dynamic extent (a contextvar), and instrumented code opens
spans through the module-level :func:`span` function::

    with Tracer() as tracer:
        bxsd_to_xsd(schema)          # every arrow records its span
    tracer.write_jsonl("trace.jsonl")

**Zero cost when disabled.**  With no tracer installed, :func:`span`
returns a single shared no-op object after one contextvar read — no
allocation, no clock read, no locking — so the hot paths pay one ``is
None`` test per unit of work (never per event).  Instrumented sites open
one span per document / per translation stage, not per node.

**Pool workers.**  Contextvars do not cross thread-pool boundaries, so
:func:`repro.engine.validate_many` re-installs the caller's tracer (and
the batch span as the parent) inside each worker via
:func:`installed_tracer` — the same re-install trick the resilience layer
uses for limits and injectors.

**Request correlation.**  A serving process correlates every span with
the request that caused it:

* Root spans may carry an externally assigned trace id — the serve
  daemon honors an incoming W3C ``traceparent`` header
  (:func:`parse_traceparent`) and otherwise mints a fresh 128-bit id
  (:func:`new_trace_id`), so one trace id names the request across the
  client, the access log, the retained trace, and the metric exemplar.
* :func:`set_baggage` installs ambient key/value annotations
  (``tenant``, ``schema_hash``, ``request_id``) that every span opened
  in the dynamic extent absorbs into its attributes — including spans
  opened on the far side of a thread-pool hop, because
  :func:`installed_tracer` re-installs the caller's baggage alongside
  the tracer.
* :class:`TailSampler` is a tracer sink that implements tail-based
  retention: it buffers each trace's spans until the root finishes,
  then keeps the whole trace only if it errored, exceeded a latency
  threshold, or won a reservoir slot — the heavy-tailed outliers the
  Theorem 8/9 complexity results predict are exactly the traces worth
  keeping, and uniform head-sampling would lose them.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import random
import threading
import time
from collections import OrderedDict, deque

_ambient_tracer = contextvars.ContextVar("repro_tracer", default=None)
_current_span = contextvars.ContextVar("repro_current_span", default=None)
_ambient_baggage = contextvars.ContextVar("repro_baggage", default=None)


class Span:
    """One timed, attributed region of work inside a trace tree.

    Created by :meth:`Tracer.span` (or the module-level :func:`span`);
    used as a context manager.  Entering installs the span as the ambient
    parent for spans opened inside its extent; exiting restores the
    previous parent, stamps ``end_ns``, marks the status ``error`` when
    an exception is propagating, and hands the span to its tracer.

    Attributes:
        name: the span's stable dotted name (``translation.algorithm3``).
        span_id: tracer-unique integer id (allocation order: a parent's
            id is always smaller than its children's).
        trace_id: the id of the root span of this tree.
        parent_id: the enclosing span's id, or ``None`` for a root.
        start_ns / end_ns: ``perf_counter_ns`` stamps (``end_ns`` is
            ``None`` while the span is open).
        attributes: free-form dict of JSON-serializable values.
        status: ``"ok"`` or ``"error"``.
    """

    __slots__ = ("name", "span_id", "trace_id", "parent_id", "start_ns",
                 "end_ns", "attributes", "status", "_tracer", "_token")

    def __init__(self, tracer, name, span_id, trace_id, parent_id,
                 attributes):
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.status = "ok"
        self._tracer = tracer
        self._token = None
        self.end_ns = None
        self.start_ns = time.perf_counter_ns()

    # -- recording --------------------------------------------------------
    def set_attribute(self, key, value):
        self.attributes[key] = value

    def set_status(self, status):
        self.status = status

    def end(self):
        """Stamp ``end_ns`` and hand the span to the tracer (idempotent)."""
        if self.end_ns is None:
            self.end_ns = time.perf_counter_ns()
            self._tracer._finish(self)

    @property
    def duration_ns(self):
        """Elapsed nanoseconds (up to now while the span is still open)."""
        end = self.end_ns
        if end is None:
            end = time.perf_counter_ns()
        return end - self.start_ns

    def to_dict(self):
        """A JSON-serializable view (one JSONL record)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": None if self.end_ns is None else self.duration_ns,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    # -- context manager --------------------------------------------------
    def __enter__(self):
        self._token = _current_span.set(self)
        return self

    def __exit__(self, exc_type, exc, traceback):
        _current_span.reset(self._token)
        self._token = None
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault(
                "error", f"{exc_type.__name__}: {exc}"
            )
        self.end()
        return False

    def __repr__(self):
        state = "open" if self.end_ns is None else f"{self.duration_ns}ns"
        return f"<Span {self.name} #{self.span_id} {state}>"


class _NullSpan:
    """The shared no-op span handed out when no tracer is installed.

    Stateless, so one instance serves every disabled call site (including
    nested ``with`` blocks); every method is a no-op.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set_attribute(self, key, value):
        pass

    def set_status(self, status):
        pass

    def end(self):
        pass

    def __repr__(self):
        return "<NullSpan>"


NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe collector of finished spans.

    Args:
        maxlen: ring-buffer bound on *retained* finished spans (older
            spans are dropped from the buffer but stay counted in the
            per-name summary, so aggregates never lose data).
        sink: optional callable invoked with each finished :class:`Span`
            (outside the tracer lock) — the CLI's ``--trace FILE`` streams
            JSONL lines through it so no span is lost to the ring bound.

    Entering the tracer installs it ambiently (contextvar) for the
    dynamic extent, mirroring :class:`~repro.observability.ResourceBudget`.
    """

    __slots__ = ("maxlen", "sink", "_spans", "_summary", "_next_id",
                 "_started", "_finished", "_lock", "_token")

    def __init__(self, maxlen=4096, sink=None):
        if maxlen < 1:
            raise ValueError("maxlen must be at least 1")
        self.maxlen = maxlen
        self.sink = sink
        self._spans = deque(maxlen=maxlen)
        self._summary = {}
        self._next_id = 1
        self._started = 0
        self._finished = 0
        self._lock = threading.Lock()
        self._token = None

    # -- span creation ----------------------------------------------------
    def span(self, name, trace_id=None, **attributes):
        """Open a child span of the current ambient span.

        ``trace_id`` assigns an externally chosen trace id to a *root*
        span (the serve daemon passes the W3C ``traceparent`` id here);
        with a parent ambient, the parent's trace id always wins.  Any
        ambient :func:`set_baggage` annotations are merged into the
        span's attributes (explicit attributes win on collision).
        """
        parent = _current_span.get()
        baggage = _ambient_baggage.get()
        if baggage:
            merged = dict(baggage)
            merged.update(attributes)
            attributes = merged
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._started += 1
        if parent is None:
            parent_id = None
            trace_id = span_id if trace_id is None else trace_id
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(self, name, span_id, trace_id, parent_id, attributes)

    def _finish(self, span):
        with self._lock:
            self._finished += 1
            self._spans.append(span)
            entry = self._summary.get(span.name)
            if entry is None:
                entry = self._summary[span.name] = [0, 0]
            entry[0] += 1
            entry[1] += span.duration_ns
        sink = self.sink
        if sink is not None:
            sink(span)

    # -- inspection -------------------------------------------------------
    def finished_spans(self):
        """Snapshot list of retained finished spans (oldest first)."""
        with self._lock:
            return list(self._spans)

    def open_spans(self):
        """Spans started but not yet ended (0 after a clean run)."""
        with self._lock:
            return self._started - self._finished

    def summary(self):
        """Per-name aggregates over *all* finished spans (ring-proof).

        Returns:
            dict ``name -> {"count", "total_ns", "mean_ns"}``.
        """
        with self._lock:
            return {
                name: {
                    "count": count,
                    "total_ns": total,
                    "mean_ns": total / count if count else 0,
                }
                for name, (count, total) in sorted(self._summary.items())
            }

    # -- export -----------------------------------------------------------
    def to_jsonl(self):
        """Retained finished spans as JSONL text (one object per line)."""
        return "".join(
            json.dumps(span.to_dict(), sort_keys=True) + "\n"
            for span in self.finished_spans()
        )

    def write_jsonl(self, target):
        """Write :meth:`to_jsonl` to a path or a writable file object."""
        text = self.to_jsonl()
        if hasattr(target, "write"):
            target.write(text)
            return
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)

    # -- ambient installation ---------------------------------------------
    def __enter__(self):
        self._token = _ambient_tracer.set(self)
        return self

    def __exit__(self, *exc_info):
        _ambient_tracer.reset(self._token)
        self._token = None
        return False

    def __repr__(self):
        return (
            f"<Tracer finished={self._finished} open={self.open_spans()} "
            f"maxlen={self.maxlen}>"
        )


def current_tracer():
    """The ambiently installed tracer, or ``None``."""
    return _ambient_tracer.get()


def current_span():
    """The innermost open ambient span, or ``None``."""
    return _current_span.get()


def resolve_tracer(tracer=None):
    """``tracer`` if given, else the ambient one (``None`` when neither)."""
    return tracer if tracer is not None else _ambient_tracer.get()


def span(name, **attributes):
    """Open a span on the ambient tracer; the shared no-op when disabled.

    This is the call instrumented hot paths make: one contextvar read,
    and with no tracer installed the same stateless :data:`NULL_SPAN`
    object is returned every time — no allocation, no clock read.
    """
    tracer = _ambient_tracer.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attributes)


@contextlib.contextmanager
def installed_tracer(tracer, parent=None, baggage=None):
    """Install ``tracer`` (and ``parent`` as the current span) ambiently.

    Token-based, so concurrent use from pool worker threads is safe —
    the worker threads of :func:`repro.engine.validate_many` use this to
    carry the caller's tracer and the batch span across the pool boundary
    (entering the :class:`Tracer` instance itself would clobber the reset
    token under concurrency, exactly like the fault injector).

    ``baggage`` re-installs the caller's ambient annotations on the far
    side of the hop (pass :func:`current_baggage` captured before the
    pool submit), so worker-side spans keep their ``tenant`` /
    ``schema_hash`` / ``request_id`` attributes.
    """
    tracer_token = _ambient_tracer.set(tracer)
    span_token = _current_span.set(parent)
    baggage_token = (
        _ambient_baggage.set(dict(baggage)) if baggage else None
    )
    try:
        yield tracer
    finally:
        if baggage_token is not None:
            _ambient_baggage.reset(baggage_token)
        _current_span.reset(span_token)
        _ambient_tracer.reset(tracer_token)


# -- baggage ---------------------------------------------------------------

def current_baggage():
    """The ambient baggage dict, or ``None`` (never mutate the result)."""
    return _ambient_baggage.get()


@contextlib.contextmanager
def set_baggage(**items):
    """Install key/value annotations every span in the extent absorbs.

    Baggage layers: entering with new keys merges over the enclosing
    baggage for the dynamic extent, and the previous baggage is restored
    on exit (token-based, thread- and task-safe).  ``None`` values are
    dropped, so call sites can pass optional fields unconditionally.
    """
    merged = dict(_ambient_baggage.get() or ())
    merged.update(
        (key, value) for key, value in items.items() if value is not None
    )
    token = _ambient_baggage.set(merged)
    try:
        yield merged
    finally:
        _ambient_baggage.reset(token)


# -- W3C trace context -----------------------------------------------------

def new_trace_id():
    """A fresh random 128-bit trace id as 32 lowercase hex digits."""
    return os.urandom(16).hex()


def span_id_hex(span_id):
    """A span id (tracer-local int or hex string) as 16 hex digits."""
    if isinstance(span_id, str):
        return span_id[-16:].rjust(16, "0")
    return format(span_id & ((1 << 64) - 1), "016x")


def trace_id_hex(trace_id):
    """A trace id (hex string or legacy root-span int) as 32 hex digits."""
    if isinstance(trace_id, str):
        return trace_id[-32:].rjust(32, "0")
    return format(trace_id & ((1 << 128) - 1), "032x")


def parse_traceparent(header):
    """Parse a W3C ``traceparent`` header.

    Returns ``(trace_id, parent_span_id)`` as lowercase hex strings, or
    ``None`` when the header is absent or malformed (per the spec, a
    broken header is ignored and a fresh trace started, never an error).
    """
    if not isinstance(header, str):
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, parent_id = parts[0], parts[1], parts[2]
    if len(version) != 2 or version == "ff":
        return None
    if len(trace_id) != 32 or len(parent_id) != 16:
        return None
    try:
        int(version, 16)
        int(trace_id, 16)
        int(parent_id, 16)
        int(parts[3], 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return trace_id, parent_id


def format_traceparent(trace_id, span_id, sampled=True):
    """Render a W3C ``traceparent`` header value for an outgoing hop."""
    flags = "01" if sampled else "00"
    return f"00-{trace_id_hex(trace_id)}-{span_id_hex(span_id)}-{flags}"


# -- tail-based sampling ---------------------------------------------------

class TailSampler:
    """A tracer sink retaining whole traces by their *outcome*.

    Spans buffer per trace id until the trace's root span finishes; the
    finished trace is then kept when any of these hold, checked in
    order (the recorded ``reason`` is the first that fired):

    * ``error`` — the root's status is ``error``, or its ``status``
      attribute is an HTTP code >= 400;
    * ``slow`` — the root's duration reached ``latency_threshold``
      (seconds; ``None`` disables);
    * ``reservoir`` — the trace won a slot in an Algorithm-R style
      reservoir of ``reservoir`` fast traces (each of the *n* fast
      traces seen so far is kept with probability ``reservoir / n``),
      so a baseline of ordinary requests survives for comparison
      without uniform sampling drowning the outliers.

    Kept traces land in a bounded in-memory deque (``retain`` newest,
    served by ``GET /debug/traces``) and, when a ``ring`` is given
    (:class:`~repro.observability.ringfile.RingFileWriter` or any
    object with a ``write(record)`` method), as one JSONL record each.
    Dropped traces release their spans immediately.  Pending (un-ended)
    traces are bounded by ``max_pending`` — beyond it the oldest pending
    trace is discarded, so leaked spans cannot grow the buffer without
    bound.

    Thread-safe: spans finish on whatever thread ends them.
    """

    def __init__(self, latency_threshold=None, reservoir=4, retain=256,
                 ring=None, max_pending=512, max_spans_per_trace=512,
                 registry=None, rng=None):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        if reservoir < 0:
            raise ValueError(f"reservoir must be >= 0, got {reservoir}")
        self.latency_threshold_ns = (
            None if latency_threshold is None
            else int(latency_threshold * 1e9)
        )
        self.reservoir = reservoir
        self.ring = ring
        self.max_pending = max_pending
        self.max_spans_per_trace = max_spans_per_trace
        self._rng = rng if rng is not None else random.Random()
        self._pending = OrderedDict()
        self._retained = deque(maxlen=retain)
        self._fast_seen = 0
        self._lock = threading.Lock()
        from repro.observability.metrics import resolve_registry

        registry = resolve_registry(registry)
        self._kept = registry.counter(
            "trace.tail.kept",
            help="finished traces retained by the tail sampler",
        )
        self._dropped = registry.counter(
            "trace.tail.dropped",
            help="finished traces discarded by the tail sampler",
        )
        self._kept_by = {
            reason: registry.counter(f"trace.tail.kept.{reason}")
            for reason in ("error", "slow", "reservoir")
        }

    # -- the sink protocol ------------------------------------------------
    def __call__(self, span):
        """Receive one finished span (the :class:`Tracer` sink hook)."""
        record = span.to_dict()
        trace_id = record["trace_id"]
        is_root = record["parent_id"] is None
        with self._lock:
            spans = self._pending.setdefault(trace_id, [])
            if len(spans) < self.max_spans_per_trace:
                spans.append(record)
            if not is_root:
                while len(self._pending) > self.max_pending:
                    self._pending.popitem(last=False)
                return
            spans = self._pending.pop(trace_id)
            keep_reason = self._decision_locked(record)
            if keep_reason is None:
                self._dropped.inc()
                return
            kept = {
                "ts": time.time(),
                "trace_id": trace_id_hex(trace_id),
                "reason": keep_reason,
                "duration_ms": (record["duration_ns"] or 0) / 1e6,
                "root": record,
                "spans": spans,
            }
            self._retained.append(kept)
        self._kept.inc()
        counter = self._kept_by.get(keep_reason)
        if counter is not None:
            counter.inc()
        ring = self.ring
        if ring is not None:
            ring.write(kept)

    def _decision_locked(self, root):
        status = root["attributes"].get("status")
        if root["status"] == "error" or (
            isinstance(status, int) and status >= 400
        ):
            return "error"
        duration = root["duration_ns"] or 0
        threshold = self.latency_threshold_ns
        if threshold is not None and duration >= threshold:
            return "slow"
        if self.reservoir:
            self._fast_seen += 1
            if self._rng.randrange(self._fast_seen) < self.reservoir:
                return "reservoir"
        return None

    # -- inspection -------------------------------------------------------
    def retained(self, limit=None):
        """Retained trace records, newest first (``limit`` caps them)."""
        with self._lock:
            records = list(self._retained)
        records.reverse()
        if limit is not None:
            records = records[:max(0, limit)]
        return records

    def __repr__(self):
        with self._lock:
            return (
                f"<TailSampler retained={len(self._retained)} "
                f"pending={len(self._pending)}>"
            )
