"""Hierarchical tracing spans for the engine and the translation square.

Metrics (PR 2) say *how much*; spans say *where the time went*.  A
:class:`Span` is one timed region of work — nanosecond start/end from
``perf_counter_ns``, free-form attributes, an ``ok``/``error`` status, and
a parent id linking it into a tree — and a :class:`Tracer` collects
finished spans into a bounded ring buffer plus per-name aggregate
summaries, exporting them as JSONL (one span object per line).

The installation idiom mirrors :class:`~repro.observability.ResourceBudget`
and :class:`~repro.resilience.FaultInjector`: enter a tracer to install it
ambiently for a dynamic extent (a contextvar), and instrumented code opens
spans through the module-level :func:`span` function::

    with Tracer() as tracer:
        bxsd_to_xsd(schema)          # every arrow records its span
    tracer.write_jsonl("trace.jsonl")

**Zero cost when disabled.**  With no tracer installed, :func:`span`
returns a single shared no-op object after one contextvar read — no
allocation, no clock read, no locking — so the hot paths pay one ``is
None`` test per unit of work (never per event).  Instrumented sites open
one span per document / per translation stage, not per node.

**Pool workers.**  Contextvars do not cross thread-pool boundaries, so
:func:`repro.engine.validate_many` re-installs the caller's tracer (and
the batch span as the parent) inside each worker via
:func:`installed_tracer` — the same re-install trick the resilience layer
uses for limits and injectors.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import threading
import time
from collections import deque

_ambient_tracer = contextvars.ContextVar("repro_tracer", default=None)
_current_span = contextvars.ContextVar("repro_current_span", default=None)


class Span:
    """One timed, attributed region of work inside a trace tree.

    Created by :meth:`Tracer.span` (or the module-level :func:`span`);
    used as a context manager.  Entering installs the span as the ambient
    parent for spans opened inside its extent; exiting restores the
    previous parent, stamps ``end_ns``, marks the status ``error`` when
    an exception is propagating, and hands the span to its tracer.

    Attributes:
        name: the span's stable dotted name (``translation.algorithm3``).
        span_id: tracer-unique integer id (allocation order: a parent's
            id is always smaller than its children's).
        trace_id: the id of the root span of this tree.
        parent_id: the enclosing span's id, or ``None`` for a root.
        start_ns / end_ns: ``perf_counter_ns`` stamps (``end_ns`` is
            ``None`` while the span is open).
        attributes: free-form dict of JSON-serializable values.
        status: ``"ok"`` or ``"error"``.
    """

    __slots__ = ("name", "span_id", "trace_id", "parent_id", "start_ns",
                 "end_ns", "attributes", "status", "_tracer", "_token")

    def __init__(self, tracer, name, span_id, trace_id, parent_id,
                 attributes):
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.status = "ok"
        self._tracer = tracer
        self._token = None
        self.end_ns = None
        self.start_ns = time.perf_counter_ns()

    # -- recording --------------------------------------------------------
    def set_attribute(self, key, value):
        self.attributes[key] = value

    def set_status(self, status):
        self.status = status

    def end(self):
        """Stamp ``end_ns`` and hand the span to the tracer (idempotent)."""
        if self.end_ns is None:
            self.end_ns = time.perf_counter_ns()
            self._tracer._finish(self)

    @property
    def duration_ns(self):
        """Elapsed nanoseconds (up to now while the span is still open)."""
        end = self.end_ns
        if end is None:
            end = time.perf_counter_ns()
        return end - self.start_ns

    def to_dict(self):
        """A JSON-serializable view (one JSONL record)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": None if self.end_ns is None else self.duration_ns,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    # -- context manager --------------------------------------------------
    def __enter__(self):
        self._token = _current_span.set(self)
        return self

    def __exit__(self, exc_type, exc, traceback):
        _current_span.reset(self._token)
        self._token = None
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault(
                "error", f"{exc_type.__name__}: {exc}"
            )
        self.end()
        return False

    def __repr__(self):
        state = "open" if self.end_ns is None else f"{self.duration_ns}ns"
        return f"<Span {self.name} #{self.span_id} {state}>"


class _NullSpan:
    """The shared no-op span handed out when no tracer is installed.

    Stateless, so one instance serves every disabled call site (including
    nested ``with`` blocks); every method is a no-op.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set_attribute(self, key, value):
        pass

    def set_status(self, status):
        pass

    def end(self):
        pass

    def __repr__(self):
        return "<NullSpan>"


NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe collector of finished spans.

    Args:
        maxlen: ring-buffer bound on *retained* finished spans (older
            spans are dropped from the buffer but stay counted in the
            per-name summary, so aggregates never lose data).
        sink: optional callable invoked with each finished :class:`Span`
            (outside the tracer lock) — the CLI's ``--trace FILE`` streams
            JSONL lines through it so no span is lost to the ring bound.

    Entering the tracer installs it ambiently (contextvar) for the
    dynamic extent, mirroring :class:`~repro.observability.ResourceBudget`.
    """

    __slots__ = ("maxlen", "sink", "_spans", "_summary", "_next_id",
                 "_started", "_finished", "_lock", "_token")

    def __init__(self, maxlen=4096, sink=None):
        if maxlen < 1:
            raise ValueError("maxlen must be at least 1")
        self.maxlen = maxlen
        self.sink = sink
        self._spans = deque(maxlen=maxlen)
        self._summary = {}
        self._next_id = 1
        self._started = 0
        self._finished = 0
        self._lock = threading.Lock()
        self._token = None

    # -- span creation ----------------------------------------------------
    def span(self, name, **attributes):
        """Open a child span of the current ambient span."""
        parent = _current_span.get()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._started += 1
        if parent is None:
            trace_id, parent_id = span_id, None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(self, name, span_id, trace_id, parent_id, attributes)

    def _finish(self, span):
        with self._lock:
            self._finished += 1
            self._spans.append(span)
            entry = self._summary.get(span.name)
            if entry is None:
                entry = self._summary[span.name] = [0, 0]
            entry[0] += 1
            entry[1] += span.duration_ns
        sink = self.sink
        if sink is not None:
            sink(span)

    # -- inspection -------------------------------------------------------
    def finished_spans(self):
        """Snapshot list of retained finished spans (oldest first)."""
        with self._lock:
            return list(self._spans)

    def open_spans(self):
        """Spans started but not yet ended (0 after a clean run)."""
        with self._lock:
            return self._started - self._finished

    def summary(self):
        """Per-name aggregates over *all* finished spans (ring-proof).

        Returns:
            dict ``name -> {"count", "total_ns", "mean_ns"}``.
        """
        with self._lock:
            return {
                name: {
                    "count": count,
                    "total_ns": total,
                    "mean_ns": total / count if count else 0,
                }
                for name, (count, total) in sorted(self._summary.items())
            }

    # -- export -----------------------------------------------------------
    def to_jsonl(self):
        """Retained finished spans as JSONL text (one object per line)."""
        return "".join(
            json.dumps(span.to_dict(), sort_keys=True) + "\n"
            for span in self.finished_spans()
        )

    def write_jsonl(self, target):
        """Write :meth:`to_jsonl` to a path or a writable file object."""
        text = self.to_jsonl()
        if hasattr(target, "write"):
            target.write(text)
            return
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)

    # -- ambient installation ---------------------------------------------
    def __enter__(self):
        self._token = _ambient_tracer.set(self)
        return self

    def __exit__(self, *exc_info):
        _ambient_tracer.reset(self._token)
        self._token = None
        return False

    def __repr__(self):
        return (
            f"<Tracer finished={self._finished} open={self.open_spans()} "
            f"maxlen={self.maxlen}>"
        )


def current_tracer():
    """The ambiently installed tracer, or ``None``."""
    return _ambient_tracer.get()


def current_span():
    """The innermost open ambient span, or ``None``."""
    return _current_span.get()


def resolve_tracer(tracer=None):
    """``tracer`` if given, else the ambient one (``None`` when neither)."""
    return tracer if tracer is not None else _ambient_tracer.get()


def span(name, **attributes):
    """Open a span on the ambient tracer; the shared no-op when disabled.

    This is the call instrumented hot paths make: one contextvar read,
    and with no tracer installed the same stateless :data:`NULL_SPAN`
    object is returned every time — no allocation, no clock read.
    """
    tracer = _ambient_tracer.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attributes)


@contextlib.contextmanager
def installed_tracer(tracer, parent=None):
    """Install ``tracer`` (and ``parent`` as the current span) ambiently.

    Token-based, so concurrent use from pool worker threads is safe —
    the worker threads of :func:`repro.engine.validate_many` use this to
    carry the caller's tracer and the batch span across the pool boundary
    (entering the :class:`Tracer` instance itself would clobber the reset
    token under concurrency, exactly like the fault injector).
    """
    tracer_token = _ambient_tracer.set(tracer)
    span_token = _current_span.set(parent)
    try:
        yield tracer
    finally:
        _current_span.reset(span_token)
        _ambient_tracer.reset(tracer_token)
