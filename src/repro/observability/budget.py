"""Resource budgets for the expensive constructions.

The translation square's hard arrows are provably exponential in the worst
case: Algorithm 2's state elimination (Theorem 8, via Ehrenfeucht-Zeiger
``X_n``) and Algorithm 3's DFA product (Lemma 6 upper bound, Theorem 9's
``B_n`` lower bound).  A server cannot tell benign from adversarial input
up front, so the only safe posture is a budget: bound wall-clock time, the
number of automaton states a construction may create, and the size of
intermediate regular expressions, and raise
:class:`~repro.errors.BudgetExceeded` (with partial-progress stats) the
moment a limit trips.

A budget can be threaded explicitly (``budget=`` keyword on the
construction functions) or installed ambiently for a dynamic extent::

    with ResourceBudget(max_states=10_000, max_seconds=2.0):
        bxsd_to_xsd(schema)          # all inner constructions observe it

The ambient form is what the CLI's ``--budget-states`` /
``--budget-seconds`` flags use; explicit threading wins over ambient.
An absent limit (``None``) means unlimited, and an absent budget costs the
hot loops a single ``is None`` test.
"""

from __future__ import annotations

import contextvars
import threading
import time

from repro.errors import BudgetExceeded

_ambient = contextvars.ContextVar("repro_resource_budget", default=None)


class ResourceBudget:
    """Limits shared by every construction in one dynamic extent.

    Args:
        max_states: most automaton states all budgeted constructions may
            create, cumulatively, before :class:`BudgetExceeded`.
        max_seconds: wall-clock deadline, measured from construction (or
            from entry when used as a context manager).
        max_regex_size: largest intermediate regular expression (paper
            size measure, symbol occurrences) state elimination may build.
    """

    __slots__ = ("max_states", "max_seconds", "max_regex_size",
                 "_states", "_started", "_lock", "_token")

    def __init__(self, max_states=None, max_seconds=None,
                 max_regex_size=None):
        for name, limit in (("max_states", max_states),
                            ("max_seconds", max_seconds),
                            ("max_regex_size", max_regex_size)):
            if limit is not None and limit <= 0:
                raise ValueError(f"{name} must be positive, got {limit!r}")
        self.max_states = max_states
        self.max_seconds = max_seconds
        self.max_regex_size = max_regex_size
        self._states = 0
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._token = None

    # -- accounting -------------------------------------------------------
    @property
    def states_created(self):
        return self._states

    def elapsed_seconds(self):
        return time.monotonic() - self._started

    def restart(self):
        """Reset the clock and the state count (entry does this)."""
        with self._lock:
            self._states = 0
            self._started = time.monotonic()

    def stats(self, where=None, limit=None):
        """Partial-progress figures (attached to :class:`BudgetExceeded`)."""
        stats = {
            "states_created": self._states,
            "elapsed_seconds": self.elapsed_seconds(),
            "max_states": self.max_states,
            "max_seconds": self.max_seconds,
            "max_regex_size": self.max_regex_size,
        }
        if where is not None:
            stats["where"] = where
        if limit is not None:
            stats["limit"] = limit
        return stats

    # -- checks (called from construction loops) --------------------------
    def charge_states(self, amount=1, where="construction"):
        """Account ``amount`` freshly created states; raise when over."""
        with self._lock:
            self._states += amount
            states = self._states
        if self.max_states is not None and states > self.max_states:
            raise BudgetExceeded(
                f"{where}: state budget exceeded "
                f"({states} states > max_states={self.max_states})",
                stats=self.stats(where=where, limit="max_states"),
            )
        self.check_time(where)

    def check_time(self, where="construction"):
        """Raise if the wall-clock deadline has passed."""
        if self.max_seconds is None:
            return
        elapsed = self.elapsed_seconds()
        if elapsed > self.max_seconds:
            raise BudgetExceeded(
                f"{where}: deadline exceeded "
                f"({elapsed:.3f}s > max_seconds={self.max_seconds})",
                stats=self.stats(where=where, limit="max_seconds"),
            )

    def charge_regex(self, size, where="state elimination"):
        """Raise if an intermediate regex has grown past the limit."""
        if self.max_regex_size is not None and size > self.max_regex_size:
            raise BudgetExceeded(
                f"{where}: regex budget exceeded (size {size} > "
                f"max_regex_size={self.max_regex_size})",
                stats=self.stats(where=where, limit="max_regex_size"),
            )
        self.check_time(where)

    # -- ambient installation ---------------------------------------------
    def __enter__(self):
        self.restart()
        self._token = _ambient.set(self)
        return self

    def __exit__(self, *exc_info):
        _ambient.reset(self._token)
        self._token = None
        return False

    def __repr__(self):
        return (
            f"ResourceBudget(max_states={self.max_states}, "
            f"max_seconds={self.max_seconds}, "
            f"max_regex_size={self.max_regex_size})"
        )


def current_budget():
    """The ambiently installed budget, or ``None``."""
    return _ambient.get()


def resolve_budget(budget=None):
    """``budget`` if given, else the ambient one (``None`` when neither)."""
    return budget if budget is not None else _ambient.get()
