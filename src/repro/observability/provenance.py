"""Validation provenance: explain every verdict, account every rule.

BonXai's priority semantics (Definition 1: the *last* matching rule wins)
means a verdict hinges on exactly which rule index fired for each node,
and Definition 2's unique typing means each element's fate is decided by
one content-model DFA run.  This module records both:

* :class:`ElementProvenance` — per element: the slash path, the assigned
  XSD type, the content-model DFA state path its children drove, the
  winning BXSD rule index (when a BonXai/DTD schema is in play), the
  verdict, and — for rejected nodes — a *first-divergence* explanation
  computed by :func:`first_divergence` (the earliest child at which the
  content DFA entered a dead state, with the continuations that were
  expected instead).
* :class:`RuleCoverage` — how often each rule decided a node across a
  corpus, flagging rules that never fired (*dynamically dead*: present in
  the schema but never relevant for any sampled node — the runtime
  counterpart of the linter's static shadowing check).

Recording is opt-in: :class:`~repro.engine.StreamingValidator` takes a
``provenance=`` recorder and pays one ``is None`` test when it is absent
(verified by bench E13 staying within noise).
"""

from __future__ import annotations


class ElementProvenance:
    """Why one element validated the way it did.

    Attributes:
        path: slash path (``/document/template/section``).
        typed_path: ordinal-indexed path (``/document[1]/template[1]``),
            matching :class:`~repro.xsd.validator.XSDValidationReport`
            typing keys.
        name: the element name.
        type_name: the assigned XSD type (Definition 2's unique typing).
        dfa_states: tuple of content-DFA state ids the element's child
            sequence drove, starting at the initial state 0.
        rule_index: the winning BXSD rule index under priority semantics,
            or ``None`` (no rule matched / schema has no rules).
        verdict: ``"ok"`` or ``"invalid"``.
        reason: first recorded explanation for an invalid verdict.
    """

    __slots__ = ("path", "typed_path", "name", "type_name", "dfa_states",
                 "rule_index", "verdict", "reason")

    def __init__(self, path, typed_path, name, type_name):
        self.path = path
        self.typed_path = typed_path
        self.name = name
        self.type_name = type_name
        self.dfa_states = (0,)
        self.rule_index = None
        self.verdict = "ok"
        self.reason = None

    def mark_invalid(self, reason):
        """Flip the verdict; the *first* reason recorded is kept."""
        self.verdict = "invalid"
        if self.reason is None:
            self.reason = reason

    def to_dict(self):
        return {
            "path": self.path,
            "typed_path": self.typed_path,
            "name": self.name,
            "type": self.type_name,
            "dfa_states": list(self.dfa_states),
            "rule_index": self.rule_index,
            "verdict": self.verdict,
            "reason": self.reason,
        }

    def __repr__(self):
        return (
            f"<ElementProvenance {self.typed_path} type={self.type_name} "
            f"{self.verdict}>"
        )


class ProvenanceRecorder:
    """Collects :class:`ElementProvenance` in document (start-tag) order.

    Passed as ``provenance=`` to the streaming validator; a recorder is
    single-document and not thread-safe (use one per document).
    """

    __slots__ = ("elements",)

    def __init__(self):
        self.elements = []

    def start_element(self, path, typed_path, name, type_name):
        """Open the record for one element; the validator fills it in."""
        entry = ElementProvenance(path, typed_path, name, type_name)
        self.elements.append(entry)
        return entry

    def invalid_elements(self):
        return [entry for entry in self.elements if entry.verdict != "ok"]

    def __len__(self):
        return len(self.elements)


class RuleCoverage:
    """Per-rule fire counts over a sample corpus (priority semantics).

    Attributes:
        rule_count: number of rules in the BXSD being covered.
        fired: list of per-rule decision counts (index = rule index).
        unmatched_nodes: nodes no rule was relevant for (unconstrained).
        documents: documents accumulated so far.
    """

    __slots__ = ("rule_count", "fired", "unmatched_nodes", "documents")

    def __init__(self, rule_count):
        if rule_count < 0:
            raise ValueError("rule_count must be non-negative")
        self.rule_count = rule_count
        self.fired = [0] * rule_count
        self.unmatched_nodes = 0
        self.documents = 0

    def record(self, rule_index):
        """Account one node's winning rule (``None`` = unconstrained)."""
        if rule_index is None:
            self.unmatched_nodes += 1
        else:
            self.fired[rule_index] += 1

    def add_report(self, report):
        """Fold one :class:`~repro.bonxai.bxsd.MatchReport` in."""
        self.documents += 1
        for rule_index in report.rule_of.values():
            self.record(rule_index)

    def nodes(self):
        """Total nodes accounted (matched + unconstrained)."""
        return sum(self.fired) + self.unmatched_nodes

    def never_fired(self):
        """Rule indices that decided no sampled node (dynamically dead)."""
        return [index for index, count in enumerate(self.fired)
                if count == 0]

    def to_dict(self):
        return {
            "documents": self.documents,
            "nodes": self.nodes(),
            "fired": list(self.fired),
            "unmatched_nodes": self.unmatched_nodes,
            "never_fired": self.never_fired(),
        }

    def __repr__(self):
        return (
            f"<RuleCoverage rules={self.rule_count} nodes={self.nodes()} "
            f"never_fired={self.never_fired()}>"
        )


def first_divergence(dfa, word):
    """Why a :class:`~repro.engine.compiler.ContentDFA` rejects ``word``.

    Replays the child-name word and reports the *first* position at which
    acceptance became impossible — either a child on which the DFA enters
    a dead state (no completion exists from there, by the ``live`` table)
    or the end of the word in a non-accepting state — together with the
    continuations that were expected instead.  Returns ``None`` when the
    word is accepted.
    """
    state = 0
    table = dfa.table
    live = dfa.live
    ids = dfa.symbol_ids
    for position, name in enumerate(word):
        symbol = ids.get(name)
        successor = None if symbol is None else table[state][symbol]
        if successor is None or not live[successor]:
            prefix = " ".join(word[:position]) or "(start)"
            return (
                f"child #{position + 1} <{name}> diverges after "
                f"[{prefix}]: expected {_expected(dfa, state)}, "
                f"got <{name}>"
            )
        state = successor
    if not dfa.accepting[state]:
        shown = " ".join(word) or "(no children)"
        return (
            f"content ends too early after [{shown}]: expected "
            f"{_expected(dfa, state, at_end=True)}"
        )
    return None


def _expected(dfa, state, at_end=False):
    """The continuations from ``state`` that can still reach acceptance."""
    row = dfa.table[state]
    names = [
        f"<{name}>"
        for index, name in enumerate(dfa.symbols)
        if dfa.live[row[index]]
    ]
    if dfa.accepting[state] and not at_end:
        names.append("end of content")
    return " or ".join(names) if names else "nothing (no continuation)"


class DocumentExplanation:
    """One document's full verdict provenance (the ``explain`` command).

    Attributes:
        report: the streaming engine's
            :class:`~repro.xsd.validator.XSDValidationReport`.
        elements: list of :class:`ElementProvenance` in document order
            (rule indices merged in for BonXai/DTD schemas).
        coverage: :class:`RuleCoverage` over this document's nodes, or
            ``None`` when the schema has no rules (plain XSD).
        rules: per-rule display strings (index-aligned), or ``None``.
    """

    __slots__ = ("report", "elements", "coverage", "rules")

    def __init__(self, report, elements, coverage=None, rules=None):
        self.report = report
        self.elements = elements
        self.coverage = coverage
        self.rules = rules

    @property
    def valid(self):
        return self.report.valid

    @property
    def violations(self):
        return self.report.violations


def explain_document(kind, schema, document):
    """Explain one document's verdict against one schema.

    Args:
        kind: ``"bonxai"`` / ``"dtd"`` / ``"xsd"`` (the CLI's schema-kind
            detection).
        schema: the loaded schema object of that kind — a BonXai
            :class:`~repro.bonxai.compile.CompiledSchema`, a parsed DTD,
            or a formal :class:`~repro.xsd.model.XSD`.
        document: a parsed :class:`~repro.xmlmodel.tree.XMLDocument`.

    Returns:
        A :class:`DocumentExplanation`.  BonXai and DTD schemas ride the
        translation square to a formal XSD for the streaming provenance
        run (exactly like batch validation), and additionally replay the
        BXSD priority semantics on the tree to attribute each element to
        its winning rule index.
    """
    from repro.engine.cache import compile_cached
    from repro.engine.streaming import StreamingValidator
    from repro.regex.printer import to_string
    from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
    from repro.translation.dfa_to_xsd import dfa_based_to_xsd

    bxsd = None
    if kind == "bonxai":
        bxsd = schema.bxsd
    elif kind == "dtd":
        from repro.translation.dtd import dtd_to_bxsd

        bxsd = dtd_to_bxsd(schema)
    if bxsd is not None:
        xsd = dfa_based_to_xsd(bxsd_to_dfa_based(bxsd))
    else:
        xsd = schema

    recorder = ProvenanceRecorder()
    report = StreamingValidator(compile_cached(xsd)).validate_events(
        document.events(), provenance=recorder
    )

    coverage = None
    rules = None
    if bxsd is not None:
        match = bxsd.match(document)
        coverage = RuleCoverage(len(bxsd.rules))
        coverage.add_report(match)
        rules = [to_string(rule.pattern) for rule in bxsd.rules]
        _merge_rule_indices(recorder.elements, document, match)
    return DocumentExplanation(
        report, recorder.elements, coverage=coverage, rules=rules
    )


def _merge_rule_indices(elements, document, match):
    """Attach BXSD rule indices to the streaming provenance entries.

    Both the recorder (start-tag order) and ``document.iter()`` walk the
    tree pre-order; the recorder may have skipped subtrees (undeclared
    elements), so entries are matched greedily by slash path — a node
    whose path differs from the next pending entry's produced no entry.
    """
    pending = iter(elements)
    entry = next(pending, None)
    for node in document.iter():
        if entry is None:
            break
        path = match.paths.get(id(node))
        if path is not None and path == entry.path:
            entry.rule_index = match.rule_of.get(id(node))
            entry = next(pending, None)
