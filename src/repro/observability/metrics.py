"""A dependency-free, thread-safe metrics registry.

Serving the validator under heavy traffic needs visibility into the hot
paths (cache behaviour, DFA sizes, per-document latency) without pulling
in a metrics client.  This module provides the three standard instrument
kinds — :class:`Counter`, :class:`Gauge`, :class:`Histogram` — owned by a
:class:`MetricsRegistry` that snapshots to a plain dict (and from there to
JSON).  Timers use ``time.perf_counter_ns`` so latency histograms keep
nanosecond resolution.

Design constraints:

* **Thread safety.**  Every instrument guards its state with one lock;
  hot loops should aggregate locally and publish once per unit of work
  (the streaming validator counts events per document, not per event).
* **Stable names.**  Instruments are keyed by dotted names
  (``engine.cache.hits``); asking the registry for an existing name
  returns the existing instrument, so modules never need to coordinate
  creation order.
* **No global coupling.**  Instrumented code resolves its registry through
  :func:`default_registry` but accepts an explicit one, so tests can use a
  private registry.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name=""):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value

    def _read_locked(self):
        """The snapshot value; the caller must hold ``self._lock``."""
        return self._value

    def __repr__(self):
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (pool sizes, cache occupancy)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name=""):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value):
        with self._lock:
            self._value = value

    def add(self, amount=1):
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value

    def _read_locked(self):
        """The snapshot value; the caller must hold ``self._lock``."""
        return self._value

    def __repr__(self):
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary of observed values: count/total/min/max + buckets.

    Buckets are powers of two over the observed value (dense enough for
    both DFA state counts and nanosecond latencies without configuration);
    ``snapshot`` reports them as ``{"<=2^k": count}`` plus the scalar
    summary, from which mean and rough percentiles can be derived.
    """

    __slots__ = ("name", "_count", "_total", "_min", "_max", "_buckets",
                 "_lock")

    def __init__(self, name=""):
        self.name = name
        self._count = 0
        self._total = 0
        self._min = None
        self._max = None
        self._buckets = {}
        self._lock = threading.Lock()

    def observe(self, value):
        bucket = max(0, (int(value) - 1).bit_length()) if value > 0 else 0
        with self._lock:
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    def time(self):
        """Context manager observing the elapsed wall time in nanoseconds."""
        return _HistogramTimer(self)

    @property
    def count(self):
        with self._lock:
            return self._count

    @property
    def total(self):
        with self._lock:
            return self._total

    def snapshot(self):
        """A consistent point-in-time summary.

        Guarantee: all fields come from one instant under the instrument
        lock, so ``sum(buckets.values()) == count`` and
        ``mean == total / count`` hold exactly, even under concurrent
        :meth:`observe` calls.
        """
        with self._lock:
            return self._read_locked()

    def _read_locked(self):
        """The snapshot summary; the caller must hold ``self._lock``."""
        mean = self._total / self._count if self._count else 0
        return {
            "count": self._count,
            "total": self._total,
            "min": self._min,
            "max": self._max,
            "mean": mean,
            "buckets": {
                f"<=2^{exponent}": hits
                for exponent, hits in sorted(self._buckets.items())
            },
        }

    def __repr__(self):
        return f"Histogram({self.name}, n={self.count})"


class _HistogramTimer:
    """``with histogram.time():`` — records elapsed nanoseconds."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram):
        self._histogram = histogram
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info):
        self._histogram.observe(time.perf_counter_ns() - self._start)
        return False


class MetricsRegistry:
    """A named collection of instruments, snapshot-able as one document.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call with a name creates the instrument, later calls return it.  A
    name may only ever denote one instrument kind.
    """

    def __init__(self):
        self._instruments = {}
        self._lock = threading.Lock()

    def _get(self, name, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, factory):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {factory.__name__}"
                )
            return instrument

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name):
        return self._get(name, Histogram)

    def timer(self, name):
        """Alias: a context manager timing into histogram ``name``."""
        return self.histogram(name).time()

    def snapshot(self):
        """A plain-dict view: {kind: {name: value-or-summary}}.

        Consistency guarantee: the snapshot is a single point-in-time cut
        across *all* instruments — every instrument lock is held (in
        sorted-name order, so concurrent snapshots cannot deadlock; hot
        paths only ever hold one instrument lock at a time) while the raw
        values are read.  Two counters always incremented back-to-back by
        one thread therefore differ by at most the one in-flight
        increment in any snapshot, and each histogram summary satisfies
        ``sum(buckets.values()) == count`` and ``mean == total / count``.
        """
        with self._lock:
            instruments = sorted(self._instruments.items())
        kinds = {Counter: "counters", Gauge: "gauges", Histogram: "histograms"}
        result = {"counters": {}, "gauges": {}, "histograms": {}}
        with contextlib.ExitStack() as stack:
            for __, instrument in instruments:
                stack.enter_context(instrument._lock)
            for name, instrument in instruments:
                result[kinds[type(instrument)]][name] = (
                    instrument._read_locked()
                )
        return result

    def to_json(self, indent=2):
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self):
        """Drop every instrument (tests; metric objects held by callers
        keep counting but are no longer reported)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self):
        with self._lock:
            return len(self._instruments)


_default = MetricsRegistry()


def default_registry():
    """The process-wide registry used by the engine, CLI, and benchmarks."""
    return _default


def resolve_registry(registry=None):
    """``registry`` if given, else the process-wide default."""
    return registry if registry is not None else _default
