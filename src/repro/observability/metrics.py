"""A dependency-free, thread-safe metrics registry.

Serving the validator under heavy traffic needs visibility into the hot
paths (cache behaviour, DFA sizes, per-document latency) without pulling
in a metrics client.  This module provides the three standard instrument
kinds — :class:`Counter`, :class:`Gauge`, :class:`Histogram` — owned by a
:class:`MetricsRegistry` that snapshots to a plain dict (and from there to
JSON).  Timers use ``time.perf_counter_ns`` so latency histograms keep
nanosecond resolution.

Design constraints:

* **Thread safety.**  Every instrument guards its state with one lock;
  hot loops should aggregate locally and publish once per unit of work
  (the streaming validator counts events per document, not per event).
* **Stable names.**  Instruments are keyed by dotted names
  (``engine.cache.hits``); asking the registry for an existing name
  returns the existing instrument, so modules never need to coordinate
  creation order.
* **No global coupling.**  Instrumented code resolves its registry through
  :func:`default_registry` but accepts an explicit one, so tests can use a
  private registry.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name="", help=None):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value

    def _read_locked(self):
        """The snapshot value; the caller must hold ``self._lock``."""
        return self._value

    def __repr__(self):
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (pool sizes, cache occupancy)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name="", help=None):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value):
        with self._lock:
            self._value = value

    def add(self, amount=1):
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value

    def _read_locked(self):
        """The snapshot value; the caller must hold ``self._lock``."""
        return self._value

    def __repr__(self):
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary of observed values: count/total/min/max + buckets.

    Buckets are powers of two over the observed value (dense enough for
    both DFA state counts and nanosecond latencies without configuration);
    ``snapshot`` reports them as ``{"<=2^k": count}`` plus the scalar
    summary and interpolated p50/p95/p99 estimates — ask
    :meth:`percentile` for any other quantile.

    An observation may carry an **exemplar**: a small label dict (in
    practice ``{"trace_id": ...}``) tying the bucket the value landed in
    to one concrete event.  The latest exemplar per bucket is retained
    and rendered in OpenMetrics exemplar syntax by the Prometheus
    exporter, so a latency bucket links straight to a retained trace.
    """

    __slots__ = ("name", "help", "_count", "_total", "_min", "_max",
                 "_buckets", "_exemplars", "_lock")

    def __init__(self, name="", help=None):
        self.name = name
        self.help = help
        self._count = 0
        self._total = 0
        self._min = None
        self._max = None
        self._buckets = {}
        self._exemplars = {}
        self._lock = threading.Lock()

    def observe(self, value, exemplar=None):
        bucket = max(0, (int(value) - 1).bit_length()) if value > 0 else 0
        with self._lock:
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
            if exemplar:
                self._exemplars[bucket] = {
                    "labels": dict(exemplar),
                    "value": value,
                    "ts": time.time(),
                }

    def percentile(self, q):
        """An interpolated estimate of the ``q``-quantile (``0 <= q <= 1``).

        The estimate walks the cumulative power-of-two buckets to the one
        holding the target rank and interpolates linearly inside it
        (clamped to the observed min/max), so it is never below the true
        quantile's bucket lower bound nor above its upper bound.  Callers
        that used to "derive rough percentiles" from the snapshot by hand
        (benchmarks, perfguard) should use this instead.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q):
        if not self._count:
            return 0.0
        target = q * self._count
        cumulative = 0
        for exponent, hits in sorted(self._buckets.items()):
            previous = cumulative
            cumulative += hits
            if cumulative >= target:
                low = 0 if exponent == 0 else 2 ** (exponent - 1)
                high = 2 ** exponent
                low = max(low, self._min)
                high = min(high, self._max)
                if high <= low:
                    return float(low)
                fraction = (max(target, previous) - previous) / hits
                return float(low + fraction * (high - low))
        return float(self._max)

    def time(self):
        """Context manager observing the elapsed wall time in nanoseconds."""
        return _HistogramTimer(self)

    @property
    def count(self):
        with self._lock:
            return self._count

    @property
    def total(self):
        with self._lock:
            return self._total

    def snapshot(self):
        """A consistent point-in-time summary.

        Guarantee: all fields come from one instant under the instrument
        lock, so ``sum(buckets.values()) == count`` and
        ``mean == total / count`` hold exactly, even under concurrent
        :meth:`observe` calls.
        """
        with self._lock:
            return self._read_locked()

    def _read_locked(self):
        """The snapshot summary; the caller must hold ``self._lock``."""
        mean = self._total / self._count if self._count else 0
        summary = {
            "count": self._count,
            "total": self._total,
            "min": self._min,
            "max": self._max,
            "mean": mean,
            "p50": self._percentile_locked(0.50),
            "p95": self._percentile_locked(0.95),
            "p99": self._percentile_locked(0.99),
            "buckets": {
                f"<=2^{exponent}": hits
                for exponent, hits in sorted(self._buckets.items())
            },
        }
        if self._exemplars:
            summary["exemplars"] = {
                f"<=2^{exponent}": dict(exemplar)
                for exponent, exemplar in sorted(self._exemplars.items())
            }
        return summary

    def __repr__(self):
        return f"Histogram({self.name}, n={self.count})"


class _HistogramTimer:
    """``with histogram.time():`` — records elapsed nanoseconds."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram):
        self._histogram = histogram
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info):
        self._histogram.observe(time.perf_counter_ns() - self._start)
        return False


class MetricsRegistry:
    """A named collection of instruments, snapshot-able as one document.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call with a name creates the instrument, later calls return it.  A
    name may only ever denote one instrument kind.

    A registration may carry a ``help=`` string — one line describing the
    *family* (labelled series registered through
    :func:`~repro.observability.export.labeled` share it, keyed by the
    name before the label block).  The Prometheus exporter renders it as
    the family's ``# HELP`` line; the first non-``None`` help for a
    family wins, so hot paths can keep calling without the string.
    """

    def __init__(self):
        self._instruments = {}
        self._help = {}
        self._lock = threading.Lock()

    def _get(self, name, factory, help=None):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory(name, help=help)
                self._instruments[name] = instrument
            elif not isinstance(instrument, factory):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {factory.__name__}"
                )
            if help is not None:
                family = name.partition("{")[0]
                self._help.setdefault(family, help)
            return instrument

    def counter(self, name, help=None):
        return self._get(name, Counter, help=help)

    def gauge(self, name, help=None):
        return self._get(name, Gauge, help=help)

    def histogram(self, name, help=None):
        return self._get(name, Histogram, help=help)

    def timer(self, name):
        """Alias: a context manager timing into histogram ``name``."""
        return self.histogram(name).time()

    def help_texts(self):
        """``{family dotted name: help}`` for every family that has one."""
        with self._lock:
            return dict(self._help)

    def snapshot(self):
        """A plain-dict view: {kind: {name: value-or-summary}}.

        Consistency guarantee: the snapshot is a single point-in-time cut
        across *all* instruments — every instrument lock is held (in
        sorted-name order, so concurrent snapshots cannot deadlock; hot
        paths only ever hold one instrument lock at a time) while the raw
        values are read.  Two counters always incremented back-to-back by
        one thread therefore differ by at most the one in-flight
        increment in any snapshot, and each histogram summary satisfies
        ``sum(buckets.values()) == count`` and ``mean == total / count``.
        """
        with self._lock:
            instruments = sorted(self._instruments.items())
        kinds = {Counter: "counters", Gauge: "gauges", Histogram: "histograms"}
        result = {"counters": {}, "gauges": {}, "histograms": {}}
        with contextlib.ExitStack() as stack:
            for __, instrument in instruments:
                stack.enter_context(instrument._lock)
            for name, instrument in instruments:
                result[kinds[type(instrument)]][name] = (
                    instrument._read_locked()
                )
        return result

    def to_json(self, indent=2):
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self):
        """Drop every instrument (tests; metric objects held by callers
        keep counting but are no longer reported)."""
        with self._lock:
            self._instruments.clear()
            self._help.clear()

    def __len__(self):
        with self._lock:
            return len(self._instruments)


_default = MetricsRegistry()


def default_registry():
    """The process-wide registry used by the engine, CLI, and benchmarks."""
    return _default


def resolve_registry(registry=None):
    """``registry`` if given, else the process-wide default."""
    return registry if registry is not None else _default
