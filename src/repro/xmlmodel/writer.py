"""Serialization of XML documents back to text."""

from __future__ import annotations

_ESCAPES_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ESCAPES_ATTR = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(value):
    """Escape character data for element content."""
    return "".join(_ESCAPES_TEXT.get(char, char) for char in value)


def escape_attribute(value):
    """Escape an attribute value for double-quoted serialization."""
    return "".join(_ESCAPES_ATTR.get(char, char) for char in value)


def write_element(node, indent=None, level=0):
    """Serialize one element.

    Args:
        node: the :class:`~repro.xmlmodel.tree.XMLElement` to write.
        indent: indentation unit (e.g. ``"  "``) for pretty printing, or
            ``None`` for compact output.  Pretty printing is only applied to
            elements without mixed content (so round trips are lossless).
        level: current nesting depth (used with ``indent``).
    """
    attributes = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in node.attributes.items()
    )
    has_content = bool(node.children) or node.has_text()
    if not has_content:
        return f"<{node.name}{attributes}/>"

    pieces = [f"<{node.name}{attributes}>"]
    pretty = indent is not None and not node.has_text() and node.children
    child_prefix = ""
    closing_prefix = ""
    if pretty:
        child_prefix = "\n" + indent * (level + 1)
        closing_prefix = "\n" + indent * level
    for index, child in enumerate(node.children):
        pieces.append(escape_text(node.texts[index]))
        if pretty:
            pieces.append(child_prefix)
        pieces.append(write_element(child, indent=indent, level=level + 1))
    pieces.append(escape_text(node.texts[len(node.children)]))
    if pretty:
        pieces.append(closing_prefix)
    pieces.append(f"</{node.name}>")
    return "".join(pieces)


def write_document(document, indent="  ", declaration=True):
    """Serialize a whole document, optionally with an XML declaration."""
    body = write_element(document.root, indent=indent)
    if declaration:
        return '<?xml version="1.0" encoding="UTF-8"?>\n' + body + "\n"
    return body + "\n"
