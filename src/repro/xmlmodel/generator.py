"""Random XML trees (not schema-driven; used for fuzzing validators).

Schema-driven document generation lives in :mod:`repro.xsd.generator`.
"""

from __future__ import annotations

from repro.xmlmodel.tree import XMLDocument, XMLElement


def random_tree(rng, labels=("a", "b", "c"), max_depth=4, max_width=4,
                attribute_names=(), text_probability=0.0):
    """Generate a random :class:`XMLDocument`.

    Args:
        rng: a ``random.Random``-like source.
        labels: candidate element names.
        max_depth: maximum nesting depth (root counts as depth 1).
        max_width: maximum number of children per node.
        attribute_names: candidate attribute names (each added with
            probability 1/2).
        text_probability: probability of inserting a text run before each
            child slot.
    """
    labels = list(labels)

    def build(depth):
        node = XMLElement(labels[rng.randrange(len(labels))])
        for name in attribute_names:
            if rng.random() < 0.5:
                node.attributes[name] = f"value{rng.randrange(10)}"
        if depth < max_depth:
            width = rng.randrange(max_width + 1)
            for __ in range(width):
                if text_probability and rng.random() < text_probability:
                    node.append_text(f"text{rng.randrange(100)} ")
                node.append(build(depth + 1))
        if text_probability and rng.random() < text_probability:
            node.append_text(f"tail{rng.randrange(100)}")
        return node

    return XMLDocument(build(1))


def mutate_tree(document, rng, labels=("a", "b", "c")):
    """Return a mutated deep copy of ``document`` (for negative tests).

    One random mutation is applied: relabel a node, delete a subtree (never
    the root), or duplicate a child.
    """
    clone = _copy(document.root)
    nodes = list(clone.iter())
    choice = rng.randrange(3)
    if choice == 0 or len(nodes) == 1:
        victim = nodes[rng.randrange(len(nodes))]
        others = [label for label in labels if label != victim.name]
        if others:
            victim.name = others[rng.randrange(len(others))]
    elif choice == 1:
        candidates = [node for node in nodes if node.parent is not None]
        victim = candidates[rng.randrange(len(candidates))]
        index = victim.parent.children.index(victim)
        del victim.parent.children[index]
        del victim.parent.texts[index + 1]
        victim.parent = None
    else:
        candidates = [node for node in nodes if node.children]
        if candidates:
            parent = candidates[rng.randrange(len(candidates))]
            child = parent.children[rng.randrange(len(parent.children))]
            parent.append(_copy(child))
        else:
            nodes[0].append(XMLElement(labels[rng.randrange(len(labels))]))
    return XMLDocument(clone)


def _copy(node):
    duplicate = XMLElement(node.name, attributes=dict(node.attributes))
    duplicate.texts = list(node.texts)
    duplicate.children = []
    duplicate.texts = [node.texts[0]]
    for index, child in enumerate(node.children):
        duplicate.append(_copy(child), text_after=node.texts[index + 1])
    return duplicate
