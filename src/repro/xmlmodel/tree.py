"""XML documents as finite, rooted, ordered, labeled, unranked trees.

This mirrors the paper's Section 4.1 terminology exactly:

* ``anc_str(v)`` — the ancestor-string: labels on the path from the root
  down to (and including) ``v``.
* ``ch_str(v)`` — the child-string: labels of the children of ``v`` from
  left to right (the paper's "content of v").

Elements carry attributes and mixed content (text interleaved with child
elements); the formal model ignores text and attributes, the practical
validators use them.
"""

from __future__ import annotations

from repro.errors import SchemaError


class XMLElement:
    """One element node of an XML tree.

    Attributes:
        name: the element name (label).
        attributes: ``dict`` of attribute name -> string value.
        children: ordered list of :class:`XMLElement` children.
        texts: mixed-content text runs; ``texts[i]`` is the text appearing
            before ``children[i]`` and ``texts[len(children)]`` the trailing
            run, so ``len(texts) == len(children) + 1`` always holds.
        parent: the parent element, or ``None`` for a root.
    """

    __slots__ = ("name", "attributes", "children", "texts", "parent")

    def __init__(self, name, attributes=None, children=None, text=None):
        self.name = name
        self.attributes = dict(attributes or {})
        self.children = []
        self.texts = [""]
        self.parent = None
        if text:
            self.texts[0] = text
        for child in children or ():
            self.append(child)

    def append(self, child, text_after=""):
        """Append a child element (and optionally text following it)."""
        if child.parent is not None:
            raise SchemaError(
                f"element <{child.name}> already has a parent "
                f"<{child.parent.name}>"
            )
        child.parent = self
        self.children.append(child)
        self.texts.append(text_after)

    def append_text(self, text):
        """Append character data at the current end of the content."""
        self.texts[-1] += text

    def insert(self, index, child, text_after=""):
        """Insert a child element at ``index`` (and text following it).

        ``index`` may be ``len(self.children)`` (append).  The ``texts``
        invariant (``len(texts) == len(children) + 1``) is maintained:
        the text run that used to follow position ``index`` now follows
        the inserted child.
        """
        if child.parent is not None:
            raise SchemaError(
                f"element <{child.name}> already has a parent "
                f"<{child.parent.name}>"
            )
        if not 0 <= index <= len(self.children):
            raise IndexError(
                f"insert index {index} out of range for "
                f"{len(self.children)} children"
            )
        child.parent = self
        self.children.insert(index, child)
        self.texts.insert(index + 1, text_after)

    def remove_child(self, index):
        """Detach and return the child at ``index``.

        The text run that followed the removed child is merged into the
        run that preceded it, so no character data is lost and the
        ``texts`` invariant holds.
        """
        if not 0 <= index < len(self.children):
            raise IndexError(
                f"remove index {index} out of range for "
                f"{len(self.children)} children"
            )
        child = self.children.pop(index)
        child.parent = None
        self.texts[index] += self.texts.pop(index + 1)
        return child

    # -- the paper's string notions --------------------------------------
    def anc_str(self):
        """The ancestor-string of this node (labels from the root to here)."""
        path = []
        node = self
        while node is not None:
            path.append(node.name)
            node = node.parent
        path.reverse()
        return path

    def ch_str(self):
        """The child-string of this node (labels of children, in order)."""
        return [child.name for child in self.children]

    # -- convenience ------------------------------------------------------
    @property
    def text(self):
        """All character data of this element, concatenated."""
        return "".join(self.texts)

    def has_text(self):
        """True iff some non-whitespace character data is present."""
        return any(run.strip() for run in self.texts)

    def iter(self):
        """Yield this element and every descendant in document order."""
        yield self
        for child in self.children:
            yield from child.iter()

    def events(self):
        """Yield this subtree as SAX-style events.

        The stream is exactly what :func:`repro.xmlmodel.parser.iter_events`
        would produce for this subtree's serialization: ``("start", name,
        attributes)`` / ``("text", data)`` / ``("end", name)``, with empty
        text runs suppressed.  The attributes dict is the node's own (not
        copied) — consumers must not mutate it.
        """
        stack = [(self, 0)]
        yield ("start", self.name, self.attributes)
        if self.texts[0]:
            yield ("text", self.texts[0])
        while stack:
            node, index = stack[-1]
            if index >= len(node.children):
                stack.pop()
                yield ("end", node.name)
                if stack:
                    parent, parent_index = stack[-1]
                    if parent.texts[parent_index]:
                        yield ("text", parent.texts[parent_index])
                continue
            stack[-1] = (node, index + 1)
            child = node.children[index]
            yield ("start", child.name, child.attributes)
            if child.texts[0]:
                yield ("text", child.texts[0])
            stack.append((child, 0))

    def find(self, name):
        """First child with the given name, or ``None``."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    def find_all(self, name):
        """All children with the given name (list)."""
        return [child for child in self.children if child.name == name]

    def depth(self):
        """Number of ancestors (the root has depth 0)."""
        count = 0
        node = self.parent
        while node is not None:
            count += 1
            node = node.parent
        return count

    def __repr__(self):
        return f"<XMLElement {self.name} children={len(self.children)}>"

    def __eq__(self, other):
        if not isinstance(other, XMLElement):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.texts == other.texts
            and self.children == other.children
        )

    def __hash__(self):
        return hash((self.name, tuple(sorted(self.attributes.items()))))


class XMLDocument:
    """A rooted XML document.

    Attributes:
        root: the root :class:`XMLElement`.
    """

    __slots__ = ("root",)

    def __init__(self, root):
        self.root = root

    def iter(self):
        """Yield all elements in document order."""
        yield from self.root.iter()

    def events(self):
        """Yield the document as SAX-style events (see XMLElement.events)."""
        return self.root.events()

    def size(self):
        """The number of element nodes."""
        return sum(1 for __ in self.iter())

    def height(self):
        """The length of the longest root-to-leaf path (in nodes)."""
        best = 0
        stack = [(self.root, 1)]
        while stack:
            node, depth = stack.pop()
            best = max(best, depth)
            for child in node.children:
                stack.append((child, depth + 1))
        return best

    def labels(self):
        """The set of element names occurring in the document."""
        return {node.name for node in self.iter()}

    def __eq__(self, other):
        if not isinstance(other, XMLDocument):
            return NotImplemented
        return self.root == other.root

    def __hash__(self):
        return hash(self.root)

    def __repr__(self):
        return f"<XMLDocument root={self.root.name} size={self.size()}>"


def element(name, *children, attributes=None, text=None):
    """Terse tree-building helper used pervasively in tests and examples.

    ``children`` items may be :class:`XMLElement` nodes or plain strings
    (appended as character data in order)::

        doc = XMLDocument(element("doc", element("a"), "hello", element("b")))
    """
    node = XMLElement(name, attributes=attributes, text=text)
    for child in children:
        if isinstance(child, str):
            node.append_text(child)
        else:
            node.append(child)
    return node
