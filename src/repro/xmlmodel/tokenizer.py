"""Byte-level two-tier tokenizer for the streaming hot path.

The char-based parser (:mod:`repro.xmlmodel.parser`) is the semantic
reference: strict well-formedness, exact diagnostics, full entity and
CDATA support.  It is also the dominant cost of text-to-verdict
validation — per-character cursor movement and per-event object
construction dwarf the engine's integer table steps.

This module adds a *fast tier* that never walks characters.  The body of
a document is split once on ``b"<"``; every resulting chunk is exactly
``tag-bytes + b">" + trailing-text-bytes``, and real documents repeat
chunks heavily (same tags, same markup runs), so each distinct chunk is
parsed **once** into an action tuple and memoized — the hot loop is one
dict lookup per chunk.  All well-formedness checking, limit checking,
and decoding happen on the memo-miss path; the per-event cost for a
repeated chunk is a hash of its bytes.

The fast tier only commits to inputs it can prove the careful tier would
accept identically:

* prolog is scanned structurally; a DOCTYPE falls back;
* any ``b"<!"``/``b"<?"`` in the body (comments, CDATA, PIs) falls back;
* non-ASCII chunks, entity references, over-limit constructs, duplicate
  attributes, and every malformed shape fall back;
* names use a conservative ASCII subset of the reference name grammar.

"Falls back" means :class:`FallbackRequired` is raised and the caller
re-runs the char-based tier from the start — so errors (type, message,
line/column) and event streams are *identical by construction*: the fast
tier either produces exactly what the careful tier would, or it produces
nothing and the careful tier speaks.  ``tests/test_tokenizer_hardening``
pins this on the fuzz-mutant corpus.

Entry points: :func:`iter_byte_events` (drop-in for
:func:`~repro.xmlmodel.parser.iter_events`, accepting str or UTF-8
bytes) and :class:`ByteTokenizer` (exposes the name-interning table and
whether the fast tier was used).  The fused dense validation loop in
:mod:`repro.engine.streaming` drives :func:`split_body` /
:func:`parse_chunk` directly with schema-interned name ids.
"""

from __future__ import annotations

import re
from itertools import islice

from repro.errors import LimitExceeded, ParseError
from repro.resilience.faults import probe
from repro.resilience.limits import resolve_limits
from repro.xmlmodel.parser import _iter_events


class FallbackRequired(Exception):
    """The fast tier cannot certify this input; use the careful tier."""

    __slots__ = ()


_FALLBACK = FallbackRequired()

# Whitespace the reference parser skips between tokens ('\x0b' etc. are
# *not* in this set: the char parser rejects them between markup, so the
# fast tier must too).
_WS = b" \t\r\n"

# ASCII bytes that str.strip() removes — the validator's text-content
# test is `text.strip()`, whose whitespace set on ASCII is wider than
# the parser's token whitespace ('\x0b', '\x0c', '\x1c'-'\x1f').
_STR_WS = b" \t\n\r\x0b\x0c\x1c\x1d\x1e\x1f"

# Conservative ASCII subset of the reference name grammar (isalpha/_:
# start, isalnum/_:.- continue).  Anything outside falls back.
_NAME_RE = re.compile(rb"[A-Za-z_:][A-Za-z0-9_:.\-]*")

# One attribute: mandatory leading whitespace (the char parser also
# accepts none after a closing quote; that shape falls back), optional
# whitespace around '=', single- or double-quoted value.
_ATTR_RE = re.compile(
    rb"[ \t\r\n]+([A-Za-z_:][A-Za-z0-9_:.\-]*)[ \t\r\n]*=[ \t\r\n]*"
    rb"(?:\"([^\"]*)\"|'([^']*)')"
)

_EMPTY_SET = frozenset()

# Action kinds.
START, END, SELFCLOSE = 0, 1, 2


def body_start(data):
    """Byte offset of the root element's ``<`` after the prolog.

    Handles whitespace, an XML declaration, and comment/PI misc;
    a DOCTYPE (rare, and full of quoting subtleties) falls back.
    Raises :class:`FallbackRequired` whenever the prolog is anything the
    structural scan cannot certify — including malformed shapes, which
    the careful tier then rejects with its exact diagnostics.
    """
    pos = 0
    size = len(data)
    while True:
        while pos < size and data[pos] in _WS:
            pos += 1
        if data.startswith(b"<?", pos):
            # Search after the opening "<?" so "<?>" (whose closing "?>"
            # would overlap it) is not mistaken for a complete PI.
            end = data.find(b"?>", pos + 2)
            if end < 0:
                raise _FALLBACK
            pos = end + 2
            continue
        if data.startswith(b"<!--", pos):
            end = data.find(b"-->", pos + 4)
            if end < 0:
                raise _FALLBACK
            pos = end + 3
            continue
        if data.startswith(b"<!", pos):  # DOCTYPE (or garbage)
            raise _FALLBACK
        if pos >= size or data[pos] != 0x3C:  # not '<'
            raise _FALLBACK
        return pos


def split_body(data, start):
    """Chunk the body: one entry per tag, ``tag + b'>' + trailing text``.

    Falls back if the body contains any markup the chunk grammar cannot
    represent (comments, CDATA sections, processing instructions).
    """
    body = data[start:] if start else data
    if b"<!" in body or b"<?" in body:
        raise _FALLBACK
    return body.split(b"<")


def parse_chunk(chunk, limits, name_id_of):
    """Parse one chunk into an action tuple (the memo-miss path).

    Returns ``(kind, name_id, attr_names, significant_text, attr_pairs,
    text)`` where ``kind`` is :data:`START`/:data:`END`/:data:`SELFCLOSE`,
    ``attr_names`` is a frozenset of decoded attribute names (``None``
    for end tags), ``significant_text`` is True iff the trailing text
    contains a non-whitespace character, ``attr_pairs`` is a tuple of
    decoded ``(name, value)`` pairs, and ``text`` is the decoded trailing
    text (``""`` when absent).

    Every check the reference parser performs on this shape happens
    here — name grammar, quote closure, duplicate attributes, and the
    ambient :class:`~repro.resilience.ParserLimits` caps — and every
    violation raises :class:`FallbackRequired` so the careful tier can
    produce the canonical error.  ``name_id_of`` interns a name's bytes
    to an integer id; it may itself raise :class:`FallbackRequired`
    (the validator does, for names outside the schema alphabet).
    """
    if not chunk.isascii():
        raise _FALLBACK
    gt = chunk.find(b">")
    if gt < 0:
        raise _FALLBACK
    tag = chunk[:gt]
    rest = chunk[gt + 1:]
    text = ""
    significant = False
    if rest:
        if b"&" in rest:
            raise _FALLBACK
        max_text = limits.max_text_length
        if max_text is not None and len(rest) > max_text:
            raise _FALLBACK
        text = rest.decode("ascii")
        significant = not text.isspace()
    max_name = limits.max_name_length
    if tag[:1] == b"/":
        name = tag[1:].rstrip(_WS)
        if _NAME_RE.fullmatch(name) is None:
            raise _FALLBACK
        if max_name is not None and len(name) > max_name:
            raise _FALLBACK
        return (END, name_id_of(name), None, significant, (), text)
    selfclose = tag[-1:] == b"/"
    if selfclose:
        tag = tag[:-1]
    matched = _NAME_RE.match(tag)
    if matched is None:
        raise _FALLBACK
    end = matched.end()
    name = tag[:end]
    if max_name is not None and end > max_name:
        raise _FALLBACK
    attr_names = _EMPTY_SET
    attr_pairs = ()
    if end < len(tag):
        blob = tag[end:]
        pos = 0
        names = []
        values = []
        match_attr = _ATTR_RE.match
        while True:
            attr = match_attr(blob, pos)
            if attr is None:
                break
            attr_name, double, single = attr.group(1, 2, 3)
            if attr_name in names:
                raise _FALLBACK  # duplicate -> careful tier's error
            names.append(attr_name)
            values.append(double if double is not None else single)
            pos = attr.end()
        if blob[pos:].strip(_WS):
            raise _FALLBACK
        max_attrs = limits.max_attributes
        if max_attrs is not None and len(names) > max_attrs:
            raise _FALLBACK
        max_text = limits.max_text_length
        pairs = []
        for attr_name, value in zip(names, values):
            if max_name is not None and len(attr_name) > max_name:
                raise _FALLBACK
            if b"&" in value:
                raise _FALLBACK
            if max_text is not None and len(value) > max_text:
                raise _FALLBACK
            pairs.append((attr_name.decode("ascii"),
                          value.decode("ascii")))
        attr_pairs = tuple(pairs)
        attr_names = frozenset(name for name, __ in attr_pairs)
    kind = SELFCLOSE if selfclose else START
    return (kind, name_id_of(name), attr_names, significant, attr_pairs,
            text)


class NameTable:
    """Document-local interning of element names (bytes -> small int)."""

    __slots__ = ("_ids", "_names")

    def __init__(self):
        self._ids = {}
        self._names = []

    def intern(self, name_bytes):
        """The id for ``name_bytes``, allocating on first sight."""
        interned = self._ids.get(name_bytes)
        if interned is None:
            interned = self._ids[name_bytes] = len(self._names)
            self._names.append(name_bytes.decode("ascii"))
        return interned

    def name(self, interned):
        """The decoded name for an interned id."""
        return self._names[interned]

    def __len__(self):
        return len(self._names)


class ByteTokenizer:
    """Tokenize one document, fast tier first, careful tier on fallback.

    Attributes:
        names: the :class:`NameTable` interning element names seen by the
            fast tier (empty when the careful tier ran).
        delegated: ``None`` before iteration finishes; afterwards True
            iff the careful (char-based) tier produced the events.
    """

    __slots__ = ("_data", "_text", "_limits", "names", "delegated")

    def __init__(self, source, limits=None):
        if isinstance(source, str):
            self._text = source
            self._data = None  # encoded lazily, only if the size cap holds
        else:
            self._data = bytes(source)
            self._text = None
        self._limits = resolve_limits(limits)
        self.names = NameTable()
        self.delegated = None

    def _decoded(self):
        if self._text is None:
            try:
                self._text = self._data.decode("utf-8")
            except UnicodeDecodeError as error:
                raise ParseError(f"input is not valid UTF-8: {error}")
        return self._text

    def _encoded(self):
        if self._data is None:
            self._data = self._text.encode("utf-8")
        return self._data

    def check_input_size(self):
        """Enforce ``max_input_bytes`` exactly like the char parser."""
        if self._text is not None:
            self._limits.check_input_size(self._text)
            return
        limit = self._limits.max_input_bytes
        if limit is not None and len(self._data) > limit:
            raise LimitExceeded(
                f"input size limit exceeded ({len(self._data)} bytes > "
                f"max_input_bytes={limit})",
                limit="max_input_bytes", value=len(self._data),
            )

    def tokens(self):
        """Fast-tier action tuples for the whole document, or fallback.

        Returns a list of :func:`parse_chunk` actions in document order
        (names interned through :attr:`names`), checking structural
        well-formedness (tag matching, depth, single root).  Raises
        :class:`FallbackRequired` when the fast tier cannot certify the
        input.  Limit note: ``max_depth`` is enforced here; the other
        caps are enforced per chunk by :func:`parse_chunk`.
        """
        data = self._encoded()
        chunks = split_body(data, body_start(data))
        limits = self._limits
        max_depth = limits.max_depth
        intern = self.names.intern
        memo = {}
        memo_get = memo.get
        actions = []
        append = actions.append
        open_ids = []
        push = open_ids.append
        pop = open_ids.pop
        depth = 0
        root_done = False
        for chunk in islice(chunks, 1, None):
            action = memo_get(chunk)
            if action is None:
                action = parse_chunk(chunk, limits, intern)
                memo[chunk] = action
            kind = action[0]
            if kind == START:
                if not depth and root_done:
                    raise _FALLBACK
                if max_depth is not None and depth >= max_depth:
                    raise _FALLBACK
                push(action[1])
                depth += 1
            elif kind == END:
                if not depth or action[1] != pop():
                    raise _FALLBACK
                depth -= 1
                if not depth:
                    root_done = True
                    if action[3]:  # text after the root element
                        raise _FALLBACK
            else:  # SELFCLOSE
                if not depth:
                    if root_done:
                        raise _FALLBACK
                    root_done = True
                    if action[3]:
                        raise _FALLBACK
                elif max_depth is not None and depth >= max_depth:
                    raise _FALLBACK
            append(action)
        if depth or not root_done:
            raise _FALLBACK
        return actions

    def events(self):
        """Yield ``("start", name, attrs)`` / ``("text", data)`` /
        ``("end", name)`` events, identical to
        :func:`~repro.xmlmodel.parser.iter_events` on the same input
        (same events, same errors, same line/column)."""
        try:
            actions = self.tokens()
        except FallbackRequired:
            self.delegated = True
            return self._careful_events()
        self.delegated = False
        return self._fast_events(actions)

    def _fast_events(self, actions):
        name_of = self.names.name
        depth = 0
        for kind, interned, __, ___, pairs, text in actions:
            name = name_of(interned)
            if kind == END:
                depth -= 1
                yield ("end", name)
            else:
                yield ("start", name, dict(pairs))
                if kind == SELFCLOSE:
                    yield ("end", name)
                else:
                    depth += 1
            # Trailing text after the root's end tag is misc the char
            # parser skips without an event — suppress it here too.
            if text and depth:
                yield ("text", text)

    def _careful_events(self):
        return _iter_events(self._decoded(), self._limits)


def iter_byte_events(source, limits=None):
    """Stream SAX-style events from ``source`` (str or UTF-8 bytes).

    A drop-in for :func:`~repro.xmlmodel.parser.iter_events` that runs
    the byte fast tier when it can: for every input, the two produce
    identical event streams or raise identical
    :class:`~repro.errors.ParseError`/:class:`~repro.errors.LimitExceeded`
    errors (message, line, column).  Like ``iter_events``, the input-size
    cap and the ``parse`` fault probe fire eagerly at the call; all other
    errors surface as the stream is consumed.
    """
    tokenizer = ByteTokenizer(source, limits)
    tokenizer.check_input_size()
    probe("parse")
    return tokenizer.events()
