"""Document Type Definitions: model, parser, and validator.

DTDs are the baseline schema language of the paper (Figure 2).  A DTD is a
set of context-insensitive rules: one content model per element name.  We
support the full element-declaration syntax::

    <!ELEMENT name EMPTY>
    <!ELEMENT name ANY>
    <!ELEMENT name (#PCDATA | a | b)*>          (mixed content)
    <!ELEMENT name (a, (b | c)*, d?)>           (children content)
    <!ATTLIST name attr CDATA #REQUIRED>        (plus #IMPLIED, #FIXED, enums)
    <!ENTITY % param "replacement text">        (parameter entities)

Parameter entities are textually substituted, exactly as the paper's
Figure 2 uses ``%markup;``.
"""

from __future__ import annotations

import re as _re

from repro.errors import ParseError, SchemaError
from repro.regex.ast import (
    EPSILON,
    concat,
    optional,
    plus,
    star,
    sym,
    union,
)
from repro.regex.derivatives import DerivativeMatcher


class DTDAttribute:
    """One attribute declaration from an ATTLIST.

    Attributes:
        name: the attribute name.
        kind: the declared type (``CDATA``, ``ID``, ``IDREF``, ``NMTOKEN``,
            or a tuple of enumeration values).
        default: one of ``"#REQUIRED"``, ``"#IMPLIED"``, ``"#FIXED"``, or a
            literal default value.
        fixed_value: the value when ``default == "#FIXED"``.
    """

    __slots__ = ("name", "kind", "default", "fixed_value")

    def __init__(self, name, kind="CDATA", default="#IMPLIED", fixed_value=None):
        self.name = name
        self.kind = kind
        self.default = default
        self.fixed_value = fixed_value

    @property
    def required(self):
        return self.default == "#REQUIRED"


class DTDElement:
    """One element declaration.

    Attributes:
        name: the element name.
        category: ``"EMPTY"``, ``"ANY"``, ``"MIXED"``, or ``"CHILDREN"``.
        content: the content-model regex (over element names); for MIXED
            content this is the star over the permitted child names, for
            EMPTY it is epsilon, for ANY it is ``None`` (anything goes).
        attributes: ``dict`` attribute name -> :class:`DTDAttribute`.
    """

    __slots__ = ("name", "category", "content", "attributes")

    def __init__(self, name, category, content):
        self.name = name
        self.category = category
        self.content = content
        self.attributes = {}

    @property
    def allows_text(self):
        return self.category in ("MIXED", "ANY")


class DTD:
    """A parsed DTD: a mapping from element names to declarations.

    Attributes:
        elements: ``dict`` element name -> :class:`DTDElement`.
        root: the expected root element name (the DOCTYPE name), if known.
    """

    def __init__(self, elements=None, root=None):
        self.elements = dict(elements or {})
        self.root = root

    def element_names(self):
        """All declared element names."""
        return set(self.elements)

    def validate(self, document):
        """Validate ``document`` and return a list of violation strings.

        An empty list means the document conforms.  Matches the classical
        DTD semantics: every element must be declared; its children must
        match its content model; text is only allowed in MIXED/ANY content;
        required attributes must be present; enumerated attributes must use
        a listed value; undeclared attributes are rejected.
        """
        violations = []
        if self.root is not None and document.root.name != self.root:
            violations.append(
                f"root element is <{document.root.name}>, expected <{self.root}>"
            )
        matchers = {}
        for node in document.iter():
            declaration = self.elements.get(node.name)
            if declaration is None:
                violations.append(f"element <{node.name}> is not declared")
                continue
            violations.extend(self._check_content(node, declaration, matchers))
            violations.extend(self._check_attributes(node, declaration))
        return violations

    def is_valid(self, document):
        """True iff the document conforms to this DTD."""
        return not self.validate(document)

    def _check_content(self, node, declaration, matchers):
        if declaration.category == "ANY":
            return []
        if declaration.category == "EMPTY":
            if node.children or node.has_text():
                return [f"element <{node.name}> must be empty"]
            return []
        if declaration.category == "CHILDREN" and node.has_text():
            return [f"element <{node.name}> may not contain text"]
        matcher = matchers.get(node.name)
        if matcher is None:
            matcher = DerivativeMatcher(declaration.content)
            matchers[node.name] = matcher
        if not matcher.matches(node.ch_str()):
            return [
                f"children of <{node.name}> "
                f"({' '.join(node.ch_str()) or 'none'}) do not match its "
                f"content model"
            ]
        return []

    def _check_attributes(self, node, declaration):
        violations = []
        for attr_name, attr in declaration.attributes.items():
            value = node.attributes.get(attr_name)
            if value is None:
                if attr.required:
                    violations.append(
                        f"element <{node.name}> is missing required "
                        f"attribute {attr_name!r}"
                    )
                continue
            if isinstance(attr.kind, tuple) and value not in attr.kind:
                violations.append(
                    f"attribute {attr_name!r} of <{node.name}> has value "
                    f"{value!r}, expected one of {sorted(attr.kind)}"
                )
            if attr.default == "#FIXED" and value != attr.fixed_value:
                violations.append(
                    f"attribute {attr_name!r} of <{node.name}> must be "
                    f"fixed to {attr.fixed_value!r}"
                )
        for attr_name in node.attributes:
            if attr_name not in declaration.attributes:
                violations.append(
                    f"attribute {attr_name!r} of <{node.name}> is not declared"
                )
        return violations


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_DECL_RE = _re.compile(r"<!(ELEMENT|ATTLIST|ENTITY)\s+", _re.DOTALL)
_COMMENT_RE = _re.compile(r"<!--.*?-->", _re.DOTALL)
_PARAM_REF_RE = _re.compile(r"%([A-Za-z_][\w.-]*);")


def parse_dtd(text, root=None):
    """Parse DTD declarations from ``text`` into a :class:`DTD`.

    Args:
        text: the DTD source (an external subset, i.e. bare declarations).
        root: optional expected root element name.
    """
    text = _COMMENT_RE.sub(" ", text)
    entities = {}
    dtd = DTD(root=root)
    for kind, body in _iter_declarations(text):
        body = _substitute_entities(body, entities)
        if kind == "ENTITY":
            name, value = _parse_entity(body)
            entities[name] = value
        elif kind == "ELEMENT":
            declaration = _parse_element_declaration(body)
            if declaration.name in dtd.elements:
                raise SchemaError(
                    f"element <{declaration.name}> is declared twice"
                )
            dtd.elements[declaration.name] = declaration
        elif kind == "ATTLIST":
            _parse_attlist(body, dtd)
    return dtd


def _iter_declarations(text):
    pos = 0
    while True:
        match = _DECL_RE.search(text, pos)
        if match is None:
            remaining = text[pos:].strip()
            if remaining:
                raise ParseError(f"unexpected DTD content: {remaining[:40]!r}")
            return
        leading = text[pos : match.start()].strip()
        if leading:
            raise ParseError(f"unexpected DTD content: {leading[:40]!r}")
        end = text.find(">", match.end())
        if end < 0:
            raise ParseError(f"unterminated <!{match.group(1)} declaration")
        yield match.group(1), text[match.end() : end].strip()
        pos = end + 1


def _substitute_entities(body, entities, depth=0):
    if depth > 16:
        raise ParseError("parameter entities nest too deeply (cycle?)")

    def replace(match):
        name = match.group(1)
        if name not in entities:
            raise ParseError(f"undefined parameter entity %{name};")
        return entities[name]

    substituted = _PARAM_REF_RE.sub(replace, body)
    if substituted != body:
        return _substitute_entities(substituted, entities, depth + 1)
    return substituted


def _parse_entity(body):
    match = _re.match(r"%\s+([\w.-]+)\s+(['\"])(.*)\2\s*$", body, _re.DOTALL)
    if match is None:
        raise ParseError(f"unsupported ENTITY declaration: {body[:60]!r}")
    return match.group(1), match.group(3)


def _parse_element_declaration(body):
    match = _re.match(r"([\w.-]+)\s+(.*)$", body, _re.DOTALL)
    if match is None:
        raise ParseError(f"malformed ELEMENT declaration: {body[:60]!r}")
    name, model = match.group(1), match.group(2).strip()
    if model == "EMPTY":
        return DTDElement(name, "EMPTY", EPSILON)
    if model == "ANY":
        return DTDElement(name, "ANY", None)
    if model.startswith("(") and "#PCDATA" in model:
        return DTDElement(name, "MIXED", _parse_mixed(model, name))
    return DTDElement(name, "CHILDREN", _parse_children_model(model, name))


def _parse_mixed(model, element_name):
    inner = model.strip()
    star_suffix = inner.endswith("*")
    if star_suffix:
        inner = inner[:-1].strip()
    if not (inner.startswith("(") and inner.endswith(")")):
        raise ParseError(
            f"malformed mixed content model for <{element_name}>: {model!r}"
        )
    parts = [part.strip() for part in inner[1:-1].split("|")]
    if parts[0] != "#PCDATA":
        raise ParseError(
            f"mixed content of <{element_name}> must start with #PCDATA"
        )
    names = [part for part in parts[1:] if part]
    if names and not star_suffix:
        raise ParseError(
            f"mixed content of <{element_name}> with child elements "
            f"requires a trailing '*'"
        )
    if not names:
        return EPSILON if not star_suffix else EPSILON
    return star(union(*(sym(name) for name in names)))


class _ModelScanner:
    """Recursive-descent parser for DTD children content models."""

    def __init__(self, text, element_name):
        self.text = text
        self.pos = 0
        self.element_name = element_name

    def error(self, message):
        return ParseError(
            f"content model of <{self.element_name}>: {message} "
            f"(at offset {self.pos} in {self.text!r})"
        )

    def skip_ws(self):
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self):
        self.skip_ws()
        if self.pos < len(self.text):
            return self.text[self.pos]
        return ""

    def parse(self):
        result = self.parse_particle()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing content")
        return result

    def parse_particle(self):
        self.skip_ws()
        if self.peek() == "(":
            self.pos += 1
            inner = self.parse_group()
            if self.peek() != ")":
                raise self.error("expected ')'")
            self.pos += 1
            node = inner
        else:
            node = sym(self.parse_name())
        return self.parse_occurrence(node)

    def parse_group(self):
        parts = [self.parse_particle()]
        separator = None
        while True:
            char = self.peek()
            if char in (",", "|"):
                if separator is None:
                    separator = char
                elif separator != char:
                    raise self.error("cannot mix ',' and '|' in one group")
                self.pos += 1
                parts.append(self.parse_particle())
            else:
                break
        if separator == "|":
            return union(*parts)
        return concat(*parts)

    def parse_occurrence(self, node):
        char = self.peek()
        if char == "*":
            self.pos += 1
            return star(node)
        if char == "+":
            self.pos += 1
            return plus(node)
        if char == "?":
            self.pos += 1
            return optional(node)
        return node

    def parse_name(self):
        self.skip_ws()
        match = _re.match(r"[\w.:-]+", self.text[self.pos :])
        if match is None:
            raise self.error("expected an element name")
        self.pos += match.end()
        return match.group(0)


def _parse_children_model(model, element_name):
    return _ModelScanner(model, element_name).parse()


_ATT_DEFAULT_RE = _re.compile(
    r"(#REQUIRED|#IMPLIED|#FIXED\s+(['\"]).*?\2|(['\"]).*?\3)"
)


def _parse_attlist(body, dtd):
    match = _re.match(r"([\w.:-]+)\s*(.*)$", body, _re.DOTALL)
    if match is None:
        raise ParseError(f"malformed ATTLIST declaration: {body[:60]!r}")
    element_name, rest = match.group(1), match.group(2)
    declaration = dtd.elements.get(element_name)
    if declaration is None:
        # XML allows ATTLIST before ELEMENT; create a placeholder that a
        # later ELEMENT declaration would conflict with -- keep it simple
        # and declare ANY content.
        declaration = DTDElement(element_name, "ANY", None)
        dtd.elements[element_name] = declaration
    scanner = _AttScanner(rest)
    while not scanner.at_end():
        attribute = scanner.parse_attribute()
        declaration.attributes[attribute.name] = attribute


class _AttScanner:
    _TYPES = ("CDATA", "ID", "IDREF", "IDREFS", "NMTOKEN", "NMTOKENS",
              "ENTITY", "ENTITIES", "NOTATION")

    def __init__(self, text):
        self.text = text
        self.pos = 0

    def skip_ws(self):
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def at_end(self):
        self.skip_ws()
        return self.pos >= len(self.text)

    def word(self):
        self.skip_ws()
        match = _re.match(r"[#\w.:'\"(-][^\s]*", self.text[self.pos :])
        if match is None:
            raise ParseError(
                f"malformed ATTLIST body near {self.text[self.pos:][:40]!r}"
            )
        self.pos += match.end()
        return match.group(0)

    def parse_attribute(self):
        name = self.word()
        self.skip_ws()
        if self.text[self.pos] == "(":
            end = self.text.find(")", self.pos)
            if end < 0:
                raise ParseError("unterminated enumeration in ATTLIST")
            values = tuple(
                value.strip()
                for value in self.text[self.pos + 1 : end].split("|")
            )
            kind = values
            self.pos = end + 1
        else:
            kind = self.word()
            if kind not in self._TYPES:
                raise ParseError(f"unknown attribute type {kind!r}")
        self.skip_ws()
        default_match = _ATT_DEFAULT_RE.match(self.text[self.pos :])
        if default_match is None:
            raise ParseError(
                f"malformed attribute default near "
                f"{self.text[self.pos:][:40]!r}"
            )
        raw_default = default_match.group(0)
        self.pos += default_match.end()
        fixed_value = None
        if raw_default.startswith("#FIXED"):
            default = "#FIXED"
            fixed_value = raw_default[len("#FIXED") :].strip()[1:-1]
        elif raw_default in ("#REQUIRED", "#IMPLIED"):
            default = raw_default
        else:
            default = raw_default[1:-1]  # a literal default value
        return DTDAttribute(name, kind=kind, default=default,
                            fixed_value=fixed_value)
