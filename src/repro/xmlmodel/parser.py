"""A from-scratch, dependency-free XML parser, hardened for hostile input.

Supports the XML subset the paper's data model needs: elements, attributes
(single- or double-quoted), character data with the five predefined
entities, numeric character references, comments, processing instructions,
CDATA sections, an XML declaration, and an (ignored, but syntax-checked)
internal DTD subset.  Namespaces are treated lexically: prefixed names are
kept verbatim (the formal model works over plain element names).

The parser is deliberately strict about well-formedness (mismatched tags,
unterminated constructs and stray ``<`` are errors) because schema tooling
should never guess.  Every failure — including malformed numeric
character references and inputs that trip a cap — is a
:class:`~repro.errors.ParseError`; no other exception type escapes on any
input (the fuzz suite pins this).

Hardening (:mod:`repro.resilience`): both entry points accept a
``limits=`` :class:`~repro.resilience.ParserLimits` (explicit, ambient,
or the generous defaults) capping input size, nesting depth, attribute
counts, name lengths, and text runs.  Element parsing is *iterative* — an
explicit stack of open elements — so depth is policy-limited
(:class:`~repro.errors.LimitExceeded`), never interpreter-limited: a
10,000-deep nesting bomb is rejected cleanly instead of crashing the
process with ``RecursionError``.  An ambient
:class:`~repro.resilience.FaultInjector` may plant faults at the
``parse`` site (chaos testing).
"""

from __future__ import annotations

from repro.errors import LimitExceeded, ParseError
from repro.resilience.faults import probe
from repro.resilience.limits import resolve_limits
from repro.xmlmodel.tree import XMLDocument, XMLElement

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


class _Cursor:
    """Tracks position in the input and provides line/column diagnostics."""

    __slots__ = ("text", "pos")

    def __init__(self, text):
        self.text = text
        self.pos = 0

    def location(self):
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message):
        line, column = self.location()
        return ParseError(message, line=line, column=column)

    def limit_error(self, message, limit, value):
        line, column = self.location()
        return LimitExceeded(
            message, line=line, column=column, limit=limit, value=value
        )

    def at_end(self):
        return self.pos >= len(self.text)

    def peek(self, width=1):
        return self.text[self.pos : self.pos + width]

    def startswith(self, token):
        return self.text.startswith(token, self.pos)

    def advance(self, amount=1):
        self.pos += amount

    def skip_whitespace(self):
        text = self.text
        while self.pos < len(text) and text[self.pos] in " \t\r\n":
            self.pos += 1

    def take_until(self, token, construct):
        index = self.text.find(token, self.pos)
        if index < 0:
            raise self.error(f"unterminated {construct}")
        chunk = self.text[self.pos : index]
        self.pos = index + len(token)
        return chunk


def _is_name_start(char):
    return char.isalpha() or char in "_:"


def _is_name_char(char):
    return char.isalnum() or char in "_:.-"


def _read_name(cursor, limits):
    start = cursor.pos
    if cursor.at_end() or not _is_name_start(cursor.peek()):
        raise cursor.error("expected a name")
    cursor.advance()
    while not cursor.at_end() and _is_name_char(cursor.peek()):
        cursor.advance()
    name = cursor.text[start : cursor.pos]
    limit = limits.max_name_length
    if limit is not None and len(name) > limit:
        raise cursor.limit_error(
            f"name length limit exceeded ({len(name)} chars > "
            f"max_name_length={limit})",
            "max_name_length", len(name),
        )
    return name


def _check_text(data, cursor, limits):
    """Enforce the per-run text cap (character data, CDATA, attributes)."""
    limit = limits.max_text_length
    if limit is not None and len(data) > limit:
        raise cursor.limit_error(
            f"text run limit exceeded ({len(data)} chars > "
            f"max_text_length={limit})",
            "max_text_length", len(data),
        )


def _decode_character_reference(body, cursor):
    """Decode a numeric character reference body (``#10`` / ``#x1F600``).

    Malformed digits, out-of-range code points, and surrogates all raise
    :class:`ParseError` with the cursor's line/column — never a raw
    ``ValueError`` from ``int``/``chr``.
    """
    if body[1:2] in ("x", "X"):
        digits = body[2:]
        if not digits or not all(c in _HEX_DIGITS for c in digits):
            raise cursor.error(f"invalid character reference &{body};")
        code = int(digits, 16)
    else:
        digits = body[1:]
        if not digits or not (digits.isascii() and digits.isdigit()):
            raise cursor.error(f"invalid character reference &{body};")
        code = int(digits)
    if code == 0 or code > 0x10FFFF or 0xD800 <= code <= 0xDFFF:
        raise cursor.error(
            f"character reference &{body}; is not a valid XML character"
        )
    return chr(code)


def _decode_entities(raw, cursor, limits):
    _check_text(raw, cursor, limits)
    if "&" not in raw:
        return raw
    out = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char != "&":
            out.append(char)
            index += 1
            continue
        end = raw.find(";", index)
        if end < 0:
            raise cursor.error("unterminated entity reference")
        body = raw[index + 1 : end]
        if body.startswith("#"):
            out.append(_decode_character_reference(body, cursor))
        elif body in _ENTITIES:
            out.append(_ENTITIES[body])
        else:
            raise cursor.error(f"unknown entity &{body};")
        index = end + 1
    return "".join(out)


def parse_document(text, limits=None):
    """Parse a complete XML document into an :class:`XMLDocument`.

    Args:
        text: the document source.
        limits: optional :class:`~repro.resilience.ParserLimits`
            (explicit wins over ambient wins over the defaults).

    Raises:
        ParseError: if the input is not well-formed, or (the
            :class:`~repro.errors.LimitExceeded` subclass) if it trips a
            parsing limit.
    """
    limits = resolve_limits(limits)
    limits.check_input_size(text)
    probe("parse")
    cursor = _Cursor(text)
    _skip_prolog(cursor)
    root = _parse_element(cursor, limits)
    _skip_misc(cursor)
    if not cursor.at_end():
        raise cursor.error("content after the root element")
    return XMLDocument(root)


def parse_fragment(text, limits=None):
    """Parse a single element (no prolog allowed) into an :class:`XMLElement`."""
    limits = resolve_limits(limits)
    limits.check_input_size(text)
    probe("parse")
    cursor = _Cursor(text)
    cursor.skip_whitespace()
    element = _parse_element(cursor, limits)
    cursor.skip_whitespace()
    if not cursor.at_end():
        raise cursor.error("content after the element")
    return element


def _skip_prolog(cursor):
    cursor.skip_whitespace()
    if cursor.startswith("<?xml"):
        cursor.take_until("?>", "XML declaration")
    _skip_misc(cursor)
    if cursor.startswith("<!DOCTYPE"):
        _skip_doctype(cursor)
    _skip_misc(cursor)


def _skip_misc(cursor):
    while True:
        cursor.skip_whitespace()
        if cursor.startswith("<!--"):
            cursor.advance(4)
            cursor.take_until("-->", "comment")
        elif cursor.startswith("<?"):
            cursor.advance(2)
            cursor.take_until("?>", "processing instruction")
        else:
            return


def _skip_doctype(cursor):
    cursor.advance(len("<!DOCTYPE"))
    depth = 0
    while not cursor.at_end():
        char = cursor.peek()
        if char in ("'", '"'):
            # Quoted literals (system/public ids, entity values) may
            # contain '>', '[' and ']'; they must not affect nesting or
            # terminate the DOCTYPE.
            cursor.advance()
            cursor.take_until(char, "DOCTYPE literal")
            continue
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == ">" and depth == 0:
            cursor.advance()
            return
        cursor.advance()
    raise cursor.error("unterminated DOCTYPE")


def _parse_element(cursor, limits):
    """Parse one element and its whole subtree, iteratively.

    An explicit stack of open elements replaces the per-nesting-level
    recursion this function used to have, so the accepted depth is
    decided by ``limits.max_depth`` — not by the interpreter's recursion
    limit (a 10k-deep document used to die with ``RecursionError``).
    """
    if not cursor.startswith("<"):
        raise cursor.error("expected an element start tag")
    max_depth = limits.max_depth
    stack = []
    while True:
        # The cursor sits on the '<' of a start tag.
        cursor.advance()
        name = _read_name(cursor, limits)
        if max_depth is not None and len(stack) >= max_depth:
            raise cursor.limit_error(
                f"nesting depth limit exceeded at <{name}> "
                f"(depth {len(stack) + 1} > max_depth={max_depth})",
                "max_depth", len(stack) + 1,
            )
        node = XMLElement(name)
        node.attributes.update(_read_attributes(cursor, name, limits))
        cursor.skip_whitespace()
        if cursor.startswith("/>"):
            cursor.advance(2)
            if not stack:
                return node
            stack[-1].append(node)
        elif cursor.startswith(">"):
            cursor.advance()
            stack.append(node)
        else:
            raise cursor.error(f"malformed start tag <{name}>")
        # Consume content until a nested start tag (break back to the
        # outer loop, which pushes it) or until every open element has
        # been closed (the subtree is complete: return it).
        while stack:
            if cursor.at_end():
                raise cursor.error(
                    f"unterminated element <{stack[-1].name}>"
                )
            if cursor.startswith("</"):
                cursor.advance(2)
                closing = _read_name(cursor, limits)
                node = stack[-1]
                if closing != node.name:
                    raise cursor.error(
                        f"mismatched end tag </{closing}> "
                        f"(expected </{node.name}>)"
                    )
                cursor.skip_whitespace()
                if not cursor.startswith(">"):
                    raise cursor.error(f"malformed end tag </{closing}>")
                cursor.advance()
                stack.pop()
                if not stack:
                    return node
                stack[-1].append(node)
                continue
            if cursor.startswith("<!--"):
                cursor.advance(4)
                cursor.take_until("-->", "comment")
                continue
            if cursor.startswith("<![CDATA["):
                cursor.advance(len("<![CDATA["))
                data = cursor.take_until("]]>", "CDATA section")
                _check_text(data, cursor, limits)
                stack[-1].append_text(data)
                continue
            if cursor.startswith("<?"):
                cursor.advance(2)
                cursor.take_until("?>", "processing instruction")
                continue
            if cursor.startswith("<"):
                break
            # Character data up to the next markup.
            index = cursor.text.find("<", cursor.pos)
            if index < 0:
                raise cursor.error(
                    f"unterminated element <{stack[-1].name}>"
                )
            raw = cursor.text[cursor.pos : index]
            cursor.pos = index
            stack[-1].append_text(_decode_entities(raw, cursor, limits))


def _read_attributes(cursor, owner_name, limits):
    """Read the attribute list of a start tag into a fresh dict."""
    max_attributes = limits.max_attributes
    attributes = {}
    while True:
        cursor.skip_whitespace()
        if cursor.at_end():
            raise cursor.error(f"unterminated start tag <{owner_name}>")
        if cursor.peek() in ("/", ">"):
            return attributes
        attr_name = _read_name(cursor, limits)
        cursor.skip_whitespace()
        if not cursor.startswith("="):
            raise cursor.error(f"attribute {attr_name!r} is missing '='")
        cursor.advance()
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in ("'", '"'):
            raise cursor.error(f"attribute {attr_name!r} value must be quoted")
        cursor.advance()
        raw = cursor.take_until(quote, f"attribute {attr_name!r}")
        if attr_name in attributes:
            raise cursor.error(f"duplicate attribute {attr_name!r}")
        if max_attributes is not None and len(attributes) >= max_attributes:
            raise cursor.limit_error(
                f"attribute count limit exceeded on <{owner_name}> "
                f"({len(attributes) + 1} attributes > "
                f"max_attributes={max_attributes})",
                "max_attributes", len(attributes) + 1,
            )
        attributes[attr_name] = _decode_entities(raw, cursor, limits)


# -- streaming (SAX-style) event mode -----------------------------------
#
# ``iter_events`` tokenizes a document into a flat event stream without
# ever materializing the tree: ``("start", name, attributes)``,
# ``("text", data)`` and ``("end", name)``.  It enforces the same
# well-formedness rules and parsing limits as :func:`parse_document` (the
# two share the cursor and attribute machinery), so for every input
# either both raise :class:`~repro.errors.ParseError` or the event
# stream spells exactly the tree the parser would build.  The compiled
# validation engine (:mod:`repro.engine.streaming`) consumes this stream
# keeping only a stack of DFA states.

def iter_events(text, limits=None):
    """Stream SAX-style events from XML ``text`` without building a tree.

    Args:
        text: the document source.
        limits: optional :class:`~repro.resilience.ParserLimits`
            (explicit wins over ambient wins over the defaults).

    Yields:
        ``("start", name, attributes)`` for each start tag (attributes is
        a fresh dict), ``("text", data)`` for each character-data or CDATA
        run (entity-decoded, possibly empty chunks are suppressed), and
        ``("end", name)`` for each end tag (self-closing tags produce a
        start/end pair).

    Raises:
        ParseError: on the same inputs :func:`parse_document` rejects
        (including over-limit ones).  The input-size cap and the fault
        probe fire eagerly at the call; all other errors surface lazily,
        as the stream is consumed.
    """
    limits = resolve_limits(limits)
    limits.check_input_size(text)
    probe("parse")
    return _iter_events(text, limits)


def _iter_events(text, limits):
    cursor = _Cursor(text)
    _skip_prolog(cursor)
    yield from _element_events(cursor, limits)
    _skip_misc(cursor)
    if not cursor.at_end():
        raise cursor.error("content after the root element")


def _element_events(cursor, limits):
    if not cursor.startswith("<"):
        raise cursor.error("expected an element start tag")
    max_depth = limits.max_depth
    stack = []
    while True:
        # Cursor sits on the '<' of a start tag.
        cursor.advance()
        name = _read_name(cursor, limits)
        if max_depth is not None and len(stack) >= max_depth:
            raise cursor.limit_error(
                f"nesting depth limit exceeded at <{name}> "
                f"(depth {len(stack) + 1} > max_depth={max_depth})",
                "max_depth", len(stack) + 1,
            )
        attributes = _read_attributes(cursor, name, limits)
        cursor.skip_whitespace()
        if cursor.startswith("/>"):
            cursor.advance(2)
            yield ("start", name, attributes)
            yield ("end", name)
            if not stack:
                return
        elif cursor.startswith(">"):
            cursor.advance()
            yield ("start", name, attributes)
            stack.append(name)
        else:
            raise cursor.error(f"malformed start tag <{name}>")
        # Consume content until a nested start tag (break to the outer
        # loop) or until every open element has been closed.
        descend = False
        while stack:
            if cursor.at_end():
                raise cursor.error(f"unterminated element <{stack[-1]}>")
            if cursor.startswith("</"):
                cursor.advance(2)
                closing = _read_name(cursor, limits)
                if closing != stack[-1]:
                    raise cursor.error(
                        f"mismatched end tag </{closing}> "
                        f"(expected </{stack[-1]}>)"
                    )
                cursor.skip_whitespace()
                if not cursor.startswith(">"):
                    raise cursor.error(f"malformed end tag </{closing}>")
                cursor.advance()
                stack.pop()
                yield ("end", closing)
                continue
            if cursor.startswith("<!--"):
                cursor.advance(4)
                cursor.take_until("-->", "comment")
                continue
            if cursor.startswith("<![CDATA["):
                cursor.advance(len("<![CDATA["))
                data = cursor.take_until("]]>", "CDATA section")
                _check_text(data, cursor, limits)
                if data:
                    yield ("text", data)
                continue
            if cursor.startswith("<?"):
                cursor.advance(2)
                cursor.take_until("?>", "processing instruction")
                continue
            if cursor.startswith("<"):
                descend = True
                break
            index = cursor.text.find("<", cursor.pos)
            if index < 0:
                raise cursor.error(f"unterminated element <{stack[-1]}>")
            raw = cursor.text[cursor.pos : index]
            cursor.pos = index
            data = _decode_entities(raw, cursor, limits)
            if data:
                yield ("text", data)
        if not descend:
            return


def from_etree(etree_element):
    """Convert a stdlib :mod:`xml.etree.ElementTree` element (adapter).

    Useful when callers already hold an ElementTree; namespace-qualified
    tags (``{uri}local``) are reduced to their local name.  The walk is
    iterative, so arbitrarily deep trees convert without recursion.
    """
    def local(tag):
        return tag.rsplit("}", 1)[-1] if tag.startswith("{") else tag

    def make(source):
        return XMLElement(
            local(source.tag),
            attributes={local(k): v for k, v in source.attrib.items()},
            text=source.text or "",
        )

    root = make(etree_element)
    stack = [(root, iter(etree_element))]
    while stack:
        node, children = stack[-1]
        child = next(children, None)
        if child is None:
            stack.pop()
            continue
        converted = make(child)
        node.append(converted, text_after=child.tail or "")
        stack.append((converted, iter(child)))
    return root
