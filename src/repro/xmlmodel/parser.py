"""A from-scratch, dependency-free XML parser.

Supports the XML subset the paper's data model needs: elements, attributes
(single- or double-quoted), character data with the five predefined
entities, numeric character references, comments, processing instructions,
CDATA sections, an XML declaration, and an (ignored, but syntax-checked)
internal DTD subset.  Namespaces are treated lexically: prefixed names are
kept verbatim (the formal model works over plain element names).

The parser is deliberately strict about well-formedness (mismatched tags,
unterminated constructs and stray ``<`` are errors) because schema tooling
should never guess.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.xmlmodel.tree import XMLDocument, XMLElement

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}


class _Cursor:
    """Tracks position in the input and provides line/column diagnostics."""

    __slots__ = ("text", "pos")

    def __init__(self, text):
        self.text = text
        self.pos = 0

    def location(self):
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message):
        line, column = self.location()
        return ParseError(message, line=line, column=column)

    def at_end(self):
        return self.pos >= len(self.text)

    def peek(self, width=1):
        return self.text[self.pos : self.pos + width]

    def startswith(self, token):
        return self.text.startswith(token, self.pos)

    def advance(self, amount=1):
        self.pos += amount

    def skip_whitespace(self):
        text = self.text
        while self.pos < len(text) and text[self.pos] in " \t\r\n":
            self.pos += 1

    def take_until(self, token, construct):
        index = self.text.find(token, self.pos)
        if index < 0:
            raise self.error(f"unterminated {construct}")
        chunk = self.text[self.pos : index]
        self.pos = index + len(token)
        return chunk


def _is_name_start(char):
    return char.isalpha() or char in "_:"


def _is_name_char(char):
    return char.isalnum() or char in "_:.-"


def _read_name(cursor):
    start = cursor.pos
    if cursor.at_end() or not _is_name_start(cursor.peek()):
        raise cursor.error("expected a name")
    cursor.advance()
    while not cursor.at_end() and _is_name_char(cursor.peek()):
        cursor.advance()
    return cursor.text[start : cursor.pos]


def _decode_entities(raw, cursor):
    if "&" not in raw:
        return raw
    out = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char != "&":
            out.append(char)
            index += 1
            continue
        end = raw.find(";", index)
        if end < 0:
            raise cursor.error("unterminated entity reference")
        body = raw[index + 1 : end]
        if body.startswith("#x") or body.startswith("#X"):
            out.append(chr(int(body[2:], 16)))
        elif body.startswith("#"):
            out.append(chr(int(body[1:])))
        elif body in _ENTITIES:
            out.append(_ENTITIES[body])
        else:
            raise cursor.error(f"unknown entity &{body};")
        index = end + 1
    return "".join(out)


def parse_document(text):
    """Parse a complete XML document into an :class:`XMLDocument`.

    Raises:
        ParseError: if the input is not well-formed.
    """
    cursor = _Cursor(text)
    _skip_prolog(cursor)
    root = _parse_element(cursor)
    _skip_misc(cursor)
    if not cursor.at_end():
        raise cursor.error("content after the root element")
    return XMLDocument(root)


def parse_fragment(text):
    """Parse a single element (no prolog allowed) into an :class:`XMLElement`."""
    cursor = _Cursor(text)
    cursor.skip_whitespace()
    element = _parse_element(cursor)
    cursor.skip_whitespace()
    if not cursor.at_end():
        raise cursor.error("content after the element")
    return element


def _skip_prolog(cursor):
    cursor.skip_whitespace()
    if cursor.startswith("<?xml"):
        cursor.take_until("?>", "XML declaration")
    _skip_misc(cursor)
    if cursor.startswith("<!DOCTYPE"):
        _skip_doctype(cursor)
    _skip_misc(cursor)


def _skip_misc(cursor):
    while True:
        cursor.skip_whitespace()
        if cursor.startswith("<!--"):
            cursor.advance(4)
            cursor.take_until("-->", "comment")
        elif cursor.startswith("<?"):
            cursor.advance(2)
            cursor.take_until("?>", "processing instruction")
        else:
            return


def _skip_doctype(cursor):
    cursor.advance(len("<!DOCTYPE"))
    depth = 0
    while not cursor.at_end():
        char = cursor.peek()
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == ">" and depth == 0:
            cursor.advance()
            return
        cursor.advance()
    raise cursor.error("unterminated DOCTYPE")


def _parse_element(cursor):
    if not cursor.startswith("<"):
        raise cursor.error("expected an element start tag")
    cursor.advance()
    name = _read_name(cursor)
    node = XMLElement(name)
    _parse_attributes(cursor, node)
    cursor.skip_whitespace()
    if cursor.startswith("/>"):
        cursor.advance(2)
        return node
    if not cursor.startswith(">"):
        raise cursor.error(f"malformed start tag <{name}>")
    cursor.advance()
    _parse_content(cursor, node)
    return node


def _parse_attributes(cursor, node):
    node.attributes.update(_read_attributes(cursor, node.name))


def _read_attributes(cursor, owner_name):
    """Read the attribute list of a start tag into a fresh dict."""
    attributes = {}
    while True:
        cursor.skip_whitespace()
        if cursor.at_end():
            raise cursor.error(f"unterminated start tag <{owner_name}>")
        if cursor.peek() in ("/", ">"):
            return attributes
        attr_name = _read_name(cursor)
        cursor.skip_whitespace()
        if not cursor.startswith("="):
            raise cursor.error(f"attribute {attr_name!r} is missing '='")
        cursor.advance()
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in ("'", '"'):
            raise cursor.error(f"attribute {attr_name!r} value must be quoted")
        cursor.advance()
        raw = cursor.take_until(quote, f"attribute {attr_name!r}")
        if attr_name in attributes:
            raise cursor.error(f"duplicate attribute {attr_name!r}")
        attributes[attr_name] = _decode_entities(raw, cursor)


def _parse_content(cursor, node):
    while True:
        if cursor.at_end():
            raise cursor.error(f"unterminated element <{node.name}>")
        if cursor.startswith("</"):
            cursor.advance(2)
            closing = _read_name(cursor)
            if closing != node.name:
                raise cursor.error(
                    f"mismatched end tag </{closing}> (expected </{node.name}>)"
                )
            cursor.skip_whitespace()
            if not cursor.startswith(">"):
                raise cursor.error(f"malformed end tag </{closing}>")
            cursor.advance()
            return
        if cursor.startswith("<!--"):
            cursor.advance(4)
            cursor.take_until("-->", "comment")
            continue
        if cursor.startswith("<![CDATA["):
            cursor.advance(len("<![CDATA["))
            node.append_text(cursor.take_until("]]>", "CDATA section"))
            continue
        if cursor.startswith("<?"):
            cursor.advance(2)
            cursor.take_until("?>", "processing instruction")
            continue
        if cursor.startswith("<"):
            child = _parse_element(cursor)
            node.append(child)
            continue
        # Character data up to the next markup.
        index = cursor.text.find("<", cursor.pos)
        if index < 0:
            raise cursor.error(f"unterminated element <{node.name}>")
        raw = cursor.text[cursor.pos : index]
        cursor.pos = index
        node.append_text(_decode_entities(raw, cursor))


# -- streaming (SAX-style) event mode -----------------------------------
#
# ``iter_events`` tokenizes a document into a flat event stream without
# ever materializing the tree: ``("start", name, attributes)``,
# ``("text", data)`` and ``("end", name)``.  It enforces the same
# well-formedness rules as :func:`parse_document` (the two share the
# cursor and attribute machinery), so for every input either both raise
# :class:`~repro.errors.ParseError` or the event stream spells exactly the
# tree the parser would build.  The compiled validation engine
# (:mod:`repro.engine.streaming`) consumes this stream keeping only a
# stack of DFA states.

def iter_events(text):
    """Stream SAX-style events from XML ``text`` without building a tree.

    Yields:
        ``("start", name, attributes)`` for each start tag (attributes is
        a fresh dict), ``("text", data)`` for each character-data or CDATA
        run (entity-decoded, possibly empty chunks are suppressed), and
        ``("end", name)`` for each end tag (self-closing tags produce a
        start/end pair).

    Raises:
        ParseError: on the same inputs :func:`parse_document` rejects.
        Because this is a generator, errors surface lazily, as the stream
        is consumed.
    """
    cursor = _Cursor(text)
    _skip_prolog(cursor)
    yield from _element_events(cursor)
    _skip_misc(cursor)
    if not cursor.at_end():
        raise cursor.error("content after the root element")


def _element_events(cursor):
    if not cursor.startswith("<"):
        raise cursor.error("expected an element start tag")
    stack = []
    while True:
        # Cursor sits on the '<' of a start tag.
        cursor.advance()
        name = _read_name(cursor)
        attributes = _read_attributes(cursor, name)
        cursor.skip_whitespace()
        if cursor.startswith("/>"):
            cursor.advance(2)
            yield ("start", name, attributes)
            yield ("end", name)
            if not stack:
                return
        elif cursor.startswith(">"):
            cursor.advance()
            yield ("start", name, attributes)
            stack.append(name)
        else:
            raise cursor.error(f"malformed start tag <{name}>")
        # Consume content until a nested start tag (break to the outer
        # loop) or until every open element has been closed.
        descend = False
        while stack:
            if cursor.at_end():
                raise cursor.error(f"unterminated element <{stack[-1]}>")
            if cursor.startswith("</"):
                cursor.advance(2)
                closing = _read_name(cursor)
                if closing != stack[-1]:
                    raise cursor.error(
                        f"mismatched end tag </{closing}> "
                        f"(expected </{stack[-1]}>)"
                    )
                cursor.skip_whitespace()
                if not cursor.startswith(">"):
                    raise cursor.error(f"malformed end tag </{closing}>")
                cursor.advance()
                stack.pop()
                yield ("end", closing)
                continue
            if cursor.startswith("<!--"):
                cursor.advance(4)
                cursor.take_until("-->", "comment")
                continue
            if cursor.startswith("<![CDATA["):
                cursor.advance(len("<![CDATA["))
                data = cursor.take_until("]]>", "CDATA section")
                if data:
                    yield ("text", data)
                continue
            if cursor.startswith("<?"):
                cursor.advance(2)
                cursor.take_until("?>", "processing instruction")
                continue
            if cursor.startswith("<"):
                descend = True
                break
            index = cursor.text.find("<", cursor.pos)
            if index < 0:
                raise cursor.error(f"unterminated element <{stack[-1]}>")
            raw = cursor.text[cursor.pos : index]
            cursor.pos = index
            data = _decode_entities(raw, cursor)
            if data:
                yield ("text", data)
        if not descend:
            return


def from_etree(etree_element):
    """Convert a stdlib :mod:`xml.etree.ElementTree` element (adapter).

    Useful when callers already hold an ElementTree; namespace-qualified
    tags (``{uri}local``) are reduced to their local name.
    """
    def local(tag):
        return tag.rsplit("}", 1)[-1] if tag.startswith("{") else tag

    def convert(source):
        node = XMLElement(
            local(source.tag),
            attributes={local(k): v for k, v in source.attrib.items()},
            text=source.text or "",
        )
        for child in source:
            converted = convert(child)
            node.append(converted, text_after=child.tail or "")
        return node

    return convert(etree_element)
