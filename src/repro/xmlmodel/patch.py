"""RFC 5261-style XML patches over simple child-index paths.

A *patch* is an ordered list of ``<add>``/``<remove>``/``<replace>``
operations — the operation vocabulary of RFC 5261 (An Extensible Markup
Language (XML) Patch Operations Framework) — with one deliberate
simplification: instead of XPath selectors, targets are addressed by
**child-index paths**.  A ``sel`` attribute is a ``/``-separated list of
zero-based child indices walked down from the root; ``sel=""`` (or
``"/"``) is the root itself, ``sel="0/2"`` is the third child of the
first child of the root.  Index paths are trivially unambiguous, cheap
to resolve, and exactly what the incremental revalidation engine's edit
API wants.

The wire format (the patch document itself is plain XML)::

    <patch>
      <add sel="0">​<item id="7"/>​</add>          append element child
      <add sel="0" index="2">​<item/>​</add>       insert at index 2
      <add sel="0/1" type="@color">red</add>     set an attribute
      <replace sel="0/1">​<item/>​</replace>       replace the subtree
      <replace sel="0/1" type="@color">b</replace>
      <replace sel="0" type="text()" index="1">hi</replace>  set a text run
      <remove sel="0/1/2"/>                      delete the subtree
      <remove sel="0/1" type="@color"/>          remove an attribute
    </patch>

(The zero-width markers above are only to keep the docstring readable;
real payloads are ordinary child elements.)

Divergences from RFC 5261, all simplifications: attribute ``<add>`` and
``<replace>`` are both "set" (the RFC errors on add-existing /
replace-missing), attribute ``<remove>`` of an absent attribute is a
no-op, and there is no ``pos=`` keyword — ``index=`` gives the insert
position directly (default: append).

Every operation can be applied two ways, and the two MUST agree (the
conformance harness's ``incremental`` leg and ``make patch-smoke``
enforce it):

* :meth:`Patch.apply_full` mutates a raw tree; the caller revalidates
  from scratch.
* :meth:`Patch.apply_incremental` drives a
  :class:`~repro.engine.incremental.ValidatedDocument`, which
  revalidates only each edit's footprint.

Element payloads are deep-copied at apply time, so one parsed
:class:`Patch` may be applied to any number of documents.
"""

from __future__ import annotations

from repro.errors import PatchError
from repro.xmlmodel.tree import XMLElement


def parse_sel(sel):
    """Parse a ``sel`` attribute into a tuple of child indices."""
    sel = sel.strip().strip("/")
    if not sel:
        return ()
    path = []
    for part in sel.split("/"):
        if not part.isdigit():
            raise PatchError(
                f"bad sel step {part!r} in {sel!r}: expected a "
                f"zero-based child index"
            )
        path.append(int(part))
    return tuple(path)


def format_sel(path):
    """Render a child-index path back into a ``sel`` string."""
    return "/".join(str(index) for index in path)


def resolve(root, path):
    """The element at a child-index ``path`` below ``root``.

    Raises :class:`~repro.errors.PatchError` naming the offending
    prefix when an index is out of range.
    """
    node = root
    for position, index in enumerate(path):
        if not 0 <= index < len(node.children):
            prefix = format_sel(path[:position + 1])
            raise PatchError(
                f"patch path /{prefix} does not exist: <{node.name}> "
                f"has {len(node.children)} child(ren)"
            )
        node = node.children[index]
    return node


def clone_element(node):
    """A deep, parentless copy of ``node`` (attributes, texts, children)."""
    copy = XMLElement(node.name, attributes=node.attributes)
    copy.texts[0] = node.texts[0]
    for index, child in enumerate(node.children):
        copy.append(clone_element(child), node.texts[index + 1])
    return copy


class PatchOp:
    """One patch operation.  Subclasses implement both application modes."""

    __slots__ = ("sel",)

    def __init__(self, sel):
        self.sel = tuple(sel)

    def apply_full(self, document):
        """Mutate ``document`` (an :class:`XMLDocument`) directly."""
        raise NotImplementedError

    def apply_incremental(self, handle):
        """Drive a :class:`ValidatedDocument`'s edit API."""
        raise NotImplementedError

    def to_element(self):
        """The operation as a patch-document element (for serializing)."""
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} sel=/{format_sel(self.sel)}>"


class AddChild(PatchOp):
    """``<add sel index?>`` — insert an element child (default: append)."""

    __slots__ = ("index", "child")

    def __init__(self, sel, child, index=None):
        super().__init__(sel)
        self.child = child
        self.index = index

    def _target_index(self, parent):
        if self.index is None:
            return len(parent.children)
        if not 0 <= self.index <= len(parent.children):
            raise PatchError(
                f"add index {self.index} out of range: "
                f"<{parent.name}> has {len(parent.children)} child(ren)"
            )
        return self.index

    def apply_full(self, document):
        parent = resolve(document.root, self.sel)
        parent.insert(self._target_index(parent), clone_element(self.child))

    def apply_incremental(self, handle):
        parent = handle.node_at(self.sel)
        handle.insert_child(
            parent, self._target_index(parent), clone_element(self.child)
        )

    def to_element(self):
        node = XMLElement("add", attributes={"sel": format_sel(self.sel)})
        if self.index is not None:
            node.attributes["index"] = str(self.index)
        node.append(clone_element(self.child))
        return node


class RemoveChild(PatchOp):
    """``<remove sel/>`` — delete the addressed subtree (not the root)."""

    __slots__ = ()

    def _split(self):
        if not self.sel:
            raise PatchError("cannot <remove> the document root")
        return self.sel[:-1], self.sel[-1]

    def apply_full(self, document):
        parent_path, index = self._split()
        parent = resolve(document.root, parent_path)
        # Resolve through the full path for the precise out-of-range error.
        resolve(document.root, self.sel)
        parent.remove_child(index)

    def apply_incremental(self, handle):
        parent_path, index = self._split()
        handle.node_at(self.sel)
        handle.delete_child(handle.node_at(parent_path), index)

    def to_element(self):
        return XMLElement(
            "remove", attributes={"sel": format_sel(self.sel)}
        )


class ReplaceChild(PatchOp):
    """``<replace sel>`` — swap the addressed subtree (root allowed)."""

    __slots__ = ("child",)

    def __init__(self, sel, child):
        super().__init__(sel)
        self.child = child

    def apply_full(self, document):
        node = resolve(document.root, self.sel)
        replacement = clone_element(self.child)
        parent = node.parent
        if parent is None:
            document.root = replacement
            return
        # By identity, not list.index: value equality could pick an
        # equal-valued sibling at a different position.
        index = next(
            i for i, sibling in enumerate(parent.children)
            if sibling is node
        )
        before = parent.texts[index]
        text_after = parent.texts[index + 1]
        parent.remove_child(index)
        parent.texts[index] = before
        parent.insert(index, replacement, text_after)

    def apply_incremental(self, handle):
        handle.replace_subtree(
            handle.node_at(self.sel), clone_element(self.child)
        )

    def to_element(self):
        node = XMLElement(
            "replace", attributes={"sel": format_sel(self.sel)}
        )
        node.append(clone_element(self.child))
        return node


class SetAttribute(PatchOp):
    """``type="@name"`` — set (``value``) or remove (``value=None``)."""

    __slots__ = ("name", "value")

    def __init__(self, sel, name, value):
        super().__init__(sel)
        self.name = name
        self.value = value

    def apply_full(self, document):
        node = resolve(document.root, self.sel)
        if self.value is None:
            node.attributes.pop(self.name, None)
        else:
            node.attributes[self.name] = self.value

    def apply_incremental(self, handle):
        handle.set_attribute(
            handle.node_at(self.sel), self.name, self.value
        )

    def to_element(self):
        verb = "remove" if self.value is None else "replace"
        node = XMLElement(verb, attributes={
            "sel": format_sel(self.sel), "type": f"@{self.name}",
        })
        if self.value is not None:
            node.append_text(self.value)
        return node


class SetText(PatchOp):
    """``type="text()"`` — replace the text run at ``index``."""

    __slots__ = ("index", "text")

    def __init__(self, sel, text, index=0):
        super().__init__(sel)
        self.text = text
        self.index = index

    def apply_full(self, document):
        node = resolve(document.root, self.sel)
        if not 0 <= self.index < len(node.texts):
            raise PatchError(
                f"text index {self.index} out of range for element "
                f"<{node.name}> with {len(node.children)} child(ren)"
            )
        node.texts[self.index] = self.text

    def apply_incremental(self, handle):
        handle.set_text(
            handle.node_at(self.sel), self.text, index=self.index
        )

    def to_element(self):
        node = XMLElement("replace", attributes={
            "sel": format_sel(self.sel), "type": "text()",
            "index": str(self.index),
        })
        if self.text:
            node.append_text(self.text)
        return node


class Patch:
    """An ordered list of :class:`PatchOp`, applied transactionally-ish.

    Application is sequential and *not* rolled back on failure — a
    failing op raises :class:`~repro.errors.PatchError` (or
    :class:`~repro.errors.SchemaError` from the edit API) with earlier
    ops already applied, mirroring RFC 5261's processing model where a
    patch document is processed in order.
    """

    __slots__ = ("ops",)

    def __init__(self, ops=()):
        self.ops = list(ops)

    def apply_full(self, document):
        """Apply every op to a raw tree (caller revalidates)."""
        for op in self.ops:
            op.apply_full(document)
        return document

    def apply_incremental(self, handle):
        """Apply every op through a :class:`ValidatedDocument`."""
        for op in self.ops:
            op.apply_incremental(handle)
        return handle

    def to_element(self):
        """The whole patch as a ``<patch>`` document element."""
        root = XMLElement("patch")
        for op in self.ops:
            root.append(op.to_element())
        return root

    def __iter__(self):
        return iter(self.ops)

    def __len__(self):
        return len(self.ops)

    def __repr__(self):
        return f"<Patch ops={len(self.ops)}>"


def _payload_element(node):
    """The single element child of an op node (whitespace tolerated)."""
    if len(node.children) != 1:
        raise PatchError(
            f"<{node.name} sel={node.attributes.get('sel', '')!r}> must "
            f"carry exactly one element child, got {len(node.children)}"
        )
    if node.has_text():
        raise PatchError(
            f"<{node.name}> mixes text with its element payload"
        )
    child = node.children[0]
    node.remove_child(0)
    return child


def op_from_element(node):
    """Parse one ``<add>``/``<remove>``/``<replace>`` element."""
    if "sel" not in node.attributes:
        raise PatchError(f"<{node.name}> is missing the sel attribute")
    sel = parse_sel(node.attributes["sel"])
    kind = node.attributes.get("type", "")
    verb = node.name
    if verb not in ("add", "remove", "replace"):
        raise PatchError(
            f"unknown patch operation <{verb}> "
            f"(expected add, remove, or replace)"
        )
    if kind.startswith("@"):
        name = kind[1:]
        if not name:
            raise PatchError(f"<{verb}> has an empty attribute selector")
        if verb == "remove":
            if node.children or node.has_text():
                raise PatchError(
                    "<remove> of an attribute takes no content"
                )
            return SetAttribute(sel, name, None)
        return SetAttribute(sel, name, node.text)
    if kind == "text()":
        if verb == "add":
            raise PatchError(
                "text() runs are replaced, not added: use "
                '<replace type="text()" index="...">'
            )
        if verb == "remove":
            return SetText(sel, "", int(node.attributes.get("index", 0)))
        return SetText(sel, node.text, int(node.attributes.get("index", 0)))
    if kind:
        raise PatchError(
            f"unknown selector type {kind!r} "
            f"(expected @attribute or text())"
        )
    if verb == "add":
        index = node.attributes.get("index")
        if index is not None and not index.isdigit():
            raise PatchError(f"bad add index {index!r}")
        return AddChild(
            sel, _payload_element(node),
            None if index is None else int(index),
        )
    if verb == "remove":
        if node.children or node.has_text():
            raise PatchError("<remove> takes no content")
        return RemoveChild(sel)
    return ReplaceChild(sel, _payload_element(node))


def patch_from_document(document):
    """Build a :class:`Patch` from a parsed ``<patch>`` document."""
    root = document.root if hasattr(document, "root") else document
    if root.name != "patch":
        raise PatchError(
            f"patch document root must be <patch>, got <{root.name}>"
        )
    return Patch([op_from_element(node) for node in list(root.children)])


def parse_patch(text, limits=None):
    """Parse patch-document text into a :class:`Patch`."""
    from repro.xmlmodel.parser import parse_document

    return patch_from_document(parse_document(text, limits=limits))


def write_patch(patch, indent=None):
    """Serialize a :class:`Patch` back to patch-document text.

    Compact by default: pretty-printing would introduce whitespace text
    runs inside element payloads, making the round trip lossy.  (As with
    all serialization here, whitespace-*only* text runs are insignificant
    and may be dropped by the writer.)
    """
    from repro.xmlmodel.writer import write_element

    return write_element(patch.to_element(), indent=indent) + "\n"


def snapshot_paths(root):
    """Every ``(node, path)`` pair below ``root``, one full walk.

    Feed the result to :func:`random_op` via ``nodes=`` to amortize the
    walk across many ops on a large document.  Structural edits make a
    snapshot stale — its paths may then fail to resolve (a
    :class:`~repro.errors.PatchError`) or address a shifted sibling, so
    refresh it periodically when the stream mutates the tree.
    """
    nodes = []
    stack = [(root, ())]
    while stack:
        node, path = stack.pop()
        nodes.append((node, path))
        for index, child in enumerate(node.children):
            stack.append((child, path + (index,)))
    return nodes


def random_op(root, rng, labels, attributes=("color", "name", "id"),
              nodes=None):
    """One random patch op that is *structurally* applicable to ``root``.

    Used by the edit-storm benchmark, ``make patch-smoke``, and the
    conformance harness's ``incremental`` leg: the op addresses a node
    that exists right now, so applying it can only fail validation, not
    resolution.  The op may well make the document invalid — that is
    the point (the two application modes must agree on *every* verdict).

    ``nodes`` (from :func:`snapshot_paths`) skips the per-call tree walk
    — the O(n) walk, not the op itself, dominates on large documents.
    """
    if nodes is None:
        nodes = snapshot_paths(root)
    node, path = nodes[rng.randrange(len(nodes))]
    labels = list(labels)
    roll = rng.random()
    if roll < 0.30:
        child = XMLElement(rng.choice(labels))
        if rng.random() < 0.3:
            child.append(XMLElement(rng.choice(labels)))
        index = rng.randrange(len(node.children) + 1)
        return AddChild(path, child, index)
    if roll < 0.50 and node.children:
        index = rng.randrange(len(node.children))
        return RemoveChild(path + (index,))
    if roll < 0.70 and path:
        replacement = XMLElement(rng.choice(labels))
        if rng.random() < 0.5:
            replacement.append(XMLElement(rng.choice(labels)))
        return ReplaceChild(path, replacement)
    if roll < 0.85:
        name = rng.choice(list(attributes))
        value = None if rng.random() < 0.3 else f"v{rng.randrange(10)}"
        return SetAttribute(path, name, value)
    return SetText(
        path,
        rng.choice(["", "hello", "42"]),
        rng.randrange(len(node.texts)),
    )
