"""XML substrate: tree model, parser, writer, DTDs, random trees."""

from repro.xmlmodel.dtd import DTD, DTDAttribute, DTDElement, parse_dtd
from repro.xmlmodel.generator import mutate_tree, random_tree
from repro.xmlmodel.patch import (
    AddChild,
    Patch,
    RemoveChild,
    ReplaceChild,
    SetAttribute,
    SetText,
    clone_element,
    parse_patch,
    random_op,
    snapshot_paths,
    write_patch,
)
from repro.xmlmodel.parser import (
    from_etree,
    iter_events,
    parse_document,
    parse_fragment,
)
from repro.xmlmodel.tokenizer import ByteTokenizer, iter_byte_events
from repro.xmlmodel.tree import XMLDocument, XMLElement, element
from repro.xmlmodel.writer import write_document, write_element

__all__ = [
    "AddChild",
    "ByteTokenizer",
    "DTD",
    "DTDAttribute",
    "DTDElement",
    "Patch",
    "RemoveChild",
    "ReplaceChild",
    "SetAttribute",
    "SetText",
    "XMLDocument",
    "XMLElement",
    "clone_element",
    "element",
    "from_etree",
    "iter_byte_events",
    "iter_events",
    "mutate_tree",
    "parse_document",
    "parse_dtd",
    "parse_fragment",
    "parse_patch",
    "random_op",
    "snapshot_paths",
    "random_tree",
    "write_document",
    "write_element",
    "write_patch",
]
