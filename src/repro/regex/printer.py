"""Rendering of regular expression ASTs back to concrete syntax.

The default syntax matches the paper's notation for content models
(comma-free concatenation is used for ancestor expressions, while content
models in the practical language separate factors by commas; both are
supported through the ``style`` parameter).
"""

from __future__ import annotations

from repro.errors import RegexError
from repro.regex.ast import (
    Concat,
    Counter,
    EmptySet,
    Epsilon,
    Interleave,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    UNBOUNDED,
    Union,
)

# Binding strength, loosest first.  Used to decide where parentheses are
# needed: a child is parenthesized iff it binds more loosely than its parent.
_PRECEDENCE = {
    Union: 0,
    Interleave: 1,
    Concat: 2,
    Star: 3,
    Plus: 3,
    Optional: 3,
    Counter: 3,
    Symbol: 4,
    Epsilon: 4,
    EmptySet: 4,
}


def to_string(node, style="space"):
    """Render ``node`` as a string.

    Args:
        node: the regular expression to render.
        style: ``"space"`` separates concatenation factors with a space
            (formal-sections notation); ``"comma"`` uses ``", "`` (the
            practical language's content-model notation).
    """
    if style not in ("space", "comma"):
        raise RegexError(f"unknown printing style {style!r}")
    return _render(node, style)


def _render(node, style):
    if isinstance(node, EmptySet):
        return "#empty"
    if isinstance(node, Epsilon):
        return "#eps"
    if isinstance(node, Symbol):
        return node.name
    if isinstance(node, Union):
        return " | ".join(_child(node, c, style) for c in node.children)
    if isinstance(node, Interleave):
        return " & ".join(_child(node, c, style) for c in node.children)
    if isinstance(node, Concat):
        separator = " " if style == "space" else ", "
        return separator.join(_child(node, c, style) for c in node.children)
    if isinstance(node, Star):
        return _child(node, node.child, style) + "*"
    if isinstance(node, Plus):
        return _child(node, node.child, style) + "+"
    if isinstance(node, Optional):
        return _child(node, node.child, style) + "?"
    if isinstance(node, Counter):
        high = "*" if node.high is UNBOUNDED else str(node.high)
        return _child(node, node.child, style) + f"{{{node.low},{high}}}"
    raise RegexError(f"unknown regex node {node!r}")


def _child(parent, child, style):
    text = _render(child, style)
    child_precedence = _PRECEDENCE[type(child)]
    parent_precedence = _PRECEDENCE[type(parent)]
    needs_parens = child_precedence < parent_precedence
    # Postfix operators stack ambiguously (a** parses but means something
    # else than intended after normalization); parenthesize nested postfix.
    if isinstance(parent, (Star, Plus, Optional, Counter)) and isinstance(
        child, (Star, Plus, Optional, Counter)
    ):
        needs_parens = True
    if needs_parens:
        return f"({text})"
    return text


def to_python_re(node):
    """Translate to a :mod:`re`-compatible pattern over single characters.

    Only valid when every symbol is a single character; used by the test
    suite to cross-check our engine against Python's.

    Raises:
        RegexError: if a symbol is not exactly one character long, or the
            expression contains interleaving (not expressible in ``re``).
    """
    import re as _re

    if isinstance(node, EmptySet):
        # A pattern that matches nothing.
        return r"(?!x)x"
    if isinstance(node, Epsilon):
        return ""
    if isinstance(node, Symbol):
        if len(node.name) != 1:
            raise RegexError(
                f"to_python_re requires single-character symbols, got "
                f"{node.name!r}"
            )
        return _re.escape(node.name)
    if isinstance(node, Union):
        return "(?:" + "|".join(to_python_re(c) for c in node.children) + ")"
    if isinstance(node, Concat):
        return "".join(f"(?:{to_python_re(c)})" for c in node.children)
    if isinstance(node, Star):
        return f"(?:{to_python_re(node.child)})*"
    if isinstance(node, Plus):
        return f"(?:{to_python_re(node.child)})+"
    if isinstance(node, Optional):
        return f"(?:{to_python_re(node.child)})?"
    if isinstance(node, Counter):
        high = "" if node.high is UNBOUNDED else str(node.high)
        return f"(?:{to_python_re(node.child)}){{{node.low},{high}}}"
    if isinstance(node, Interleave):
        raise RegexError("interleaving is not expressible as a Python re")
    raise RegexError(f"unknown regex node {node!r}")
