"""One-unambiguity (Unique Particle Attribution) checking.

The W3C UPA rule requires content models to be *deterministic* regular
expressions: while matching a word left to right, it must always be clear
which occurrence of a symbol in the expression matched, without lookahead.
Formally, an expression is deterministic (one-unambiguous) iff its Glushkov
automaton is deterministic [Brüggemann-Klein & Wood 1998].

For the interleaving operator, the practical language inherits the
``xs:all`` restrictions of XML Schema (Section 3.1 of the paper): an
expression using ``&`` may not also use union or concatenation, and counters
inside an interleaving may appear only directly above element names.  Under
these restrictions an interleaving is deterministic iff its element names
are pairwise distinct, which is what :func:`check_deterministic` enforces.
"""

from __future__ import annotations

from repro.errors import NotDeterministicError, RegexError
from repro.regex.ast import (
    Concat,
    Counter,
    Interleave,
    Optional,
    Plus,
    Star,
    Symbol,
    Union,
    contains_interleave,
)
from repro.regex.glushkov import positions


def is_deterministic(regex):
    """Return True iff ``regex`` satisfies UPA (see module docstring)."""
    try:
        check_deterministic(regex)
    except NotDeterministicError:
        return False
    return True


def check_deterministic(regex):
    """Raise :class:`NotDeterministicError` if ``regex`` violates UPA.

    Also raises for interleavings that violate the Section 3.1 syntactic
    restrictions, because those cannot be represented as XSD all-groups.
    """
    if contains_interleave(regex):
        _check_interleave_restrictions(regex)
        _check_interleave_determinism(regex)
        return
    _check_glushkov_determinism(regex)


def _check_glushkov_determinism(regex):
    info = positions(regex)
    # Initial state: two distinct first positions with the same symbol.
    _check_set(info.first, info.labels, context="at the start")
    for source, followers in info.follow.items():
        _check_set(
            followers,
            info.labels,
            context=f"after an occurrence of '{info.labels[source]}'",
        )


def _check_set(position_set, labels, context):
    seen = {}
    for position in sorted(position_set):
        name = labels[position]
        if name in seen:
            raise NotDeterministicError(
                f"two competing occurrences of '{name}' {context}",
                witness=name,
            )
        seen[name] = position


def _check_interleave_restrictions(regex):
    """Enforce the Section 3.1 shape restrictions for ``&``-expressions.

    * no union or (non-trivial) concatenation anywhere in an expression
      using interleaving;
    * counters (and ?, *, +) only directly above element names.
    """
    def walk(node, inside_interleave):
        if isinstance(node, Interleave):
            for child in node.children:
                walk(child, True)
            return
        if isinstance(node, (Union, Concat)):
            raise RegexError(
                "interleaving may not be combined with union or "
                "concatenation (XSD all-group restriction)"
            )
        if isinstance(node, (Star, Plus, Optional, Counter)):
            child = node.child
            if not isinstance(child, Symbol):
                raise RegexError(
                    "inside an interleaving, counters must sit directly "
                    "above element names (XSD all-group restriction)"
                )
            return
        if isinstance(node, Symbol):
            return
        raise RegexError(
            f"unsupported node {type(node).__name__} inside interleaving"
        )

    # The top node must be the interleaving itself (possibly below a
    # counter, which the restriction also forbids for non-symbols).
    if isinstance(regex, Interleave):
        walk(regex, True)
    elif isinstance(regex, (Star, Plus, Optional, Counter)) and isinstance(
        regex.child, Interleave
    ):
        raise RegexError(
            "an interleaving may not be iterated (XSD all-group restriction)"
        )
    else:
        walk(regex, False)


def _check_interleave_determinism(regex):
    if not isinstance(regex, Interleave):
        return
    seen = set()
    for child in regex.children:
        name = child.name if isinstance(child, Symbol) else child.child.name
        if name in seen:
            raise NotDeterministicError(
                f"element '{name}' occurs twice in an interleaving",
                witness=name,
            )
        seen.add(name)


def ambiguity_witness(regex):
    """Return a human-readable description of the first UPA violation.

    Returns ``None`` when the expression is deterministic.  Used by the
    linter to explain diagnostics.
    """
    try:
        check_deterministic(regex)
    except NotDeterministicError as error:
        return str(error)
    except RegexError as error:
        return str(error)
    return None
