"""Regular-expression engine over element names.

Public surface:

* AST node classes and smart constructors (:mod:`repro.regex.ast`)
* :func:`parse_regex` / :func:`to_string`
* :func:`matches` and :class:`DerivativeMatcher` (derivative-based matching)
* :func:`glushkov_nfa` and :func:`positions`
* :func:`is_deterministic` / :func:`check_deterministic` (UPA)
* :func:`simplify`
* sampling helpers (:func:`sample_word`, :func:`shortest_word`)
"""

from repro.regex.bkw import is_one_unambiguous_language
from repro.regex.ast import (
    Concat,
    Counter,
    EMPTY,
    EPSILON,
    EmptySet,
    Epsilon,
    Interleave,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    UNBOUNDED,
    Union,
    alternation,
    concat,
    contains_counter,
    contains_interleave,
    counter,
    expand_counters,
    interleave,
    is_empty_language,
    nullable,
    optional,
    plus,
    star,
    sym,
    union,
    universal,
)
from repro.regex.derivatives import DerivativeMatcher, derivative, matches, to_dfa
from repro.regex.determinism import (
    ambiguity_witness,
    check_deterministic,
    is_deterministic,
)
from repro.regex.generator import min_word_length, sample_word, shortest_word
from repro.regex.glushkov import glushkov_nfa, positions
from repro.regex.parser import parse_regex
from repro.regex.printer import to_python_re, to_string
from repro.regex.simplify import simplify

__all__ = [
    "Concat",
    "Counter",
    "DerivativeMatcher",
    "EMPTY",
    "EPSILON",
    "EmptySet",
    "Epsilon",
    "Interleave",
    "Optional",
    "Plus",
    "Regex",
    "Star",
    "Symbol",
    "UNBOUNDED",
    "Union",
    "alternation",
    "ambiguity_witness",
    "check_deterministic",
    "concat",
    "contains_counter",
    "contains_interleave",
    "counter",
    "derivative",
    "expand_counters",
    "glushkov_nfa",
    "interleave",
    "is_deterministic",
    "is_empty_language",
    "is_one_unambiguous_language",
    "matches",
    "min_word_length",
    "nullable",
    "optional",
    "parse_regex",
    "plus",
    "positions",
    "sample_word",
    "shortest_word",
    "simplify",
    "star",
    "sym",
    "to_dfa",
    "to_python_re",
    "to_string",
    "union",
    "universal",
]
