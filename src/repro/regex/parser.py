"""Parser for the textual regular-expression syntax.

The grammar (loosest-binding first)::

    union       ::= interleave ('|' interleave)*
    interleave  ::= concat ('&' concat)*
    concat      ::= postfix ((',' | ' ') postfix)*
    postfix     ::= atom ('*' | '+' | '?' | '{' n (',' (m | '*')?)? '}')*
    atom        ::= name | '#eps' | '#empty' | '(' union ')'

Names are XML name tokens, optionally prefixed with ``@`` (attribute names
appear in ancestor patterns).  Concatenation may be written with an explicit
comma (content-model style) or by juxtaposition (formal style); the parser
accepts both, also mixed.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.regex.ast import (
    EMPTY,
    EPSILON,
    UNBOUNDED,
    concat,
    counter,
    interleave,
    optional,
    plus,
    star,
    sym,
    union,
)

_NAME_START = set("_@")
_NAME_CHARS = set("_-.:@")


def _is_name_start(char):
    return char.isalnum() or char in _NAME_START


def _is_name_char(char):
    return char.isalnum() or char in _NAME_CHARS


class _Tokenizer:
    """Splits the input into (kind, value, position) tokens."""

    _PUNCT = {"|", "&", ",", "*", "+", "?", "(", ")", "{", "}"}

    def __init__(self, text):
        self.text = text
        self.pos = 0
        self.tokens = []
        self._scan()
        self.index = 0

    def _scan(self):
        text = self.text
        i = 0
        while i < len(text):
            char = text[i]
            if char.isspace():
                i += 1
                continue
            if char in self._PUNCT:
                self.tokens.append((char, char, i))
                i += 1
                continue
            if char == "#":
                for keyword in ("#eps", "#empty"):
                    if text.startswith(keyword, i):
                        self.tokens.append(("keyword", keyword, i))
                        i += len(keyword)
                        break
                else:
                    raise ParseError(
                        f"unknown keyword starting at {text[i:i + 8]!r}",
                        column=i + 1,
                    )
                continue
            if _is_name_start(char):
                start = i
                i += 1
                while i < len(text) and _is_name_char(text[i]):
                    i += 1
                self.tokens.append(("name", text[start:i], start))
                continue
            raise ParseError(f"unexpected character {char!r}", column=i + 1)
        self.tokens.append(("eof", "", len(text)))

    def peek(self):
        return self.tokens[self.index]

    def next(self):
        token = self.tokens[self.index]
        if token[0] != "eof":
            self.index += 1
        return token

    def expect(self, kind):
        token = self.next()
        if token[0] != kind:
            raise ParseError(
                f"expected {kind!r} but found {token[1]!r}",
                column=token[2] + 1,
            )
        return token


def parse_regex(text):
    """Parse ``text`` into a :class:`~repro.regex.ast.Regex`.

    Raises:
        ParseError: on malformed input.
    """
    tokenizer = _Tokenizer(text)
    result = _parse_union(tokenizer)
    trailing = tokenizer.peek()
    if trailing[0] != "eof":
        raise ParseError(
            f"unexpected trailing input {trailing[1]!r}", column=trailing[2] + 1
        )
    return result


def _parse_union(tokenizer):
    parts = [_parse_interleave(tokenizer)]
    while tokenizer.peek()[0] == "|":
        tokenizer.next()
        parts.append(_parse_interleave(tokenizer))
    return union(*parts) if len(parts) > 1 else parts[0]


def _parse_interleave(tokenizer):
    parts = [_parse_concat(tokenizer)]
    while tokenizer.peek()[0] == "&":
        tokenizer.next()
        parts.append(_parse_concat(tokenizer))
    return interleave(*parts) if len(parts) > 1 else parts[0]


_ATOM_STARTERS = {"name", "keyword", "("}


def _parse_concat(tokenizer):
    parts = [_parse_postfix(tokenizer)]
    while True:
        kind = tokenizer.peek()[0]
        if kind == ",":
            tokenizer.next()
            parts.append(_parse_postfix(tokenizer))
        elif kind in _ATOM_STARTERS:
            # Juxtaposition (formal-sections style: "a b c").
            parts.append(_parse_postfix(tokenizer))
        else:
            break
    return concat(*parts) if len(parts) > 1 else parts[0]


def _parse_postfix(tokenizer):
    node = _parse_atom(tokenizer)
    while True:
        kind = tokenizer.peek()[0]
        if kind == "*":
            tokenizer.next()
            node = star(node)
        elif kind == "+":
            tokenizer.next()
            node = plus(node)
        elif kind == "?":
            tokenizer.next()
            node = optional(node)
        elif kind == "{":
            node = _parse_counter(tokenizer, node)
        else:
            return node


def _parse_counter(tokenizer, node):
    tokenizer.expect("{")
    low_token = tokenizer.expect("name")
    if not low_token[1].isdigit():
        raise ParseError(
            f"counter lower bound must be a number, got {low_token[1]!r}",
            column=low_token[2] + 1,
        )
    low = int(low_token[1])
    high = low
    if tokenizer.peek()[0] == ",":
        tokenizer.next()
        if tokenizer.peek()[0] == "}":
            # Standard spelling `{n,}` — synonym for `{n,*}` (the printer
            # stays canonical and always emits the `*` form).
            high = UNBOUNDED
        else:
            high_token = tokenizer.next()
            if high_token[0] == "*":
                high = UNBOUNDED
            elif high_token[0] == "name" and high_token[1].isdigit():
                high = int(high_token[1])
            else:
                raise ParseError(
                    f"counter upper bound must be a number or '*', got "
                    f"{high_token[1]!r}",
                    column=high_token[2] + 1,
                )
    tokenizer.expect("}")
    return counter(node, low, high)


def _parse_atom(tokenizer):
    token = tokenizer.next()
    kind, value, position = token
    if kind == "name":
        return sym(value)
    if kind == "keyword":
        return EPSILON if value == "#eps" else EMPTY
    if kind == "(":
        inner = _parse_union(tokenizer)
        tokenizer.expect(")")
        return inner
    raise ParseError(f"unexpected token {value!r}", column=position + 1)
