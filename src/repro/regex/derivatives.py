"""Brzozowski derivatives for matching and DFA construction.

Derivatives [Brzozowski 1964] handle every operator of the practical
language natively — including interleaving and counters — so validation
never needs the (potentially exponential) unrolled automaton form:

* ``d_a(r & s) = (d_a r & s) + (r & d_a s)``
* ``d_a(r{n,m}) = d_a(r) r{max(n-1,0), m-1}``  (when r is not nullable; the
  nullable case folds into the union with the derivative of the remainder).

The construction helpers of :mod:`repro.regex.ast` act as the similarity
normalization that keeps the set of reachable derivatives finite.
"""

from __future__ import annotations

from repro.errors import RegexError
from repro.regex.ast import (
    Concat,
    Counter,
    EMPTY,
    EPSILON,
    EmptySet,
    Epsilon,
    Interleave,
    Optional,
    Plus,
    Star,
    Symbol,
    UNBOUNDED,
    Union,
    concat,
    counter,
    interleave,
    nullable,
    star,
    union,
)


def derivative(node, symbol):
    """The Brzozowski derivative of ``node`` with respect to ``symbol``."""
    if isinstance(node, (EmptySet, Epsilon)):
        return EMPTY
    if isinstance(node, Symbol):
        return EPSILON if node.name == symbol else EMPTY
    if isinstance(node, Union):
        return union(*(derivative(child, symbol) for child in node.children))
    if isinstance(node, Concat):
        children = node.children
        head, tail = children[0], children[1:]
        rest = concat(*tail)
        first = concat(derivative(head, symbol), rest)
        if nullable(head):
            return union(first, derivative(rest, symbol))
        return first
    if isinstance(node, Interleave):
        alternatives = []
        for index, child in enumerate(node.children):
            derived = derivative(child, symbol)
            if isinstance(derived, EmptySet):
                continue
            others = list(node.children)
            others[index] = derived
            alternatives.append(interleave(*others))
        return union(*alternatives)
    if isinstance(node, Star):
        return concat(derivative(node.child, symbol), node)
    if isinstance(node, Plus):
        return concat(derivative(node.child, symbol), star(node.child))
    if isinstance(node, Optional):
        return derivative(node.child, symbol)
    if isinstance(node, Counter):
        if node.high is not UNBOUNDED and node.high == 0:
            return EMPTY
        low = max(node.low - 1, 0)
        high = UNBOUNDED if node.high is UNBOUNDED else node.high - 1
        remainder = counter(node.child, low, high)
        # Consuming the symbol always enters an iteration; if the child is
        # nullable the mandatory remaining iterations can be empty anyway,
        # so a single product term is correct in all cases.
        return concat(derivative(node.child, symbol), remainder)
    raise RegexError(f"unknown regex node {node!r}")


def matches(node, word):
    """Return True iff ``word`` (a sequence of symbols) is in ``L(node)``."""
    current = node
    for symbol in word:
        current = derivative(current, symbol)
        if isinstance(current, EmptySet):
            return False
    return nullable(current)


class DerivativeMatcher:
    """A reusable matcher that memoizes derivatives of one expression.

    The matcher exposes the interface of an implicitly-constructed DFA whose
    states are derivative expressions.  It is the workhorse of all
    validators.
    """

    def __init__(self, regex):
        self.regex = regex
        self._transitions = {}
        self._nullable_cache = {}

    def start(self):
        """The initial state (the expression itself)."""
        return self.regex

    def step(self, state, symbol):
        """Advance ``state`` by one symbol; ``EMPTY`` is the sink."""
        key = (state, symbol)
        result = self._transitions.get(key)
        if result is None:
            result = derivative(state, symbol)
            self._transitions[key] = result
        return result

    def is_accepting(self, state):
        """True iff the state's language contains the empty word."""
        cached = self._nullable_cache.get(state)
        if cached is None:
            cached = nullable(state)
            self._nullable_cache[state] = cached
        return cached

    def is_dead(self, state):
        """True iff no continuation can ever be accepted from ``state``."""
        return isinstance(state, EmptySet)

    def matches(self, word):
        """Return True iff ``word`` is in the expression's language."""
        state = self.start()
        for symbol in word:
            state = self.step(state, symbol)
            if self.is_dead(state):
                return False
        return self.is_accepting(state)

    def first_mismatch(self, word):
        """Return the index of the first position proving non-membership.

        Returns ``None`` if the word matches.  If the word is a proper
        prefix-violation (some prefix already has an empty residual
        language), the index of the offending symbol is returned; if all
        symbols can be consumed but the final state is not accepting,
        ``len(word)`` is returned.
        """
        state = self.start()
        for index, symbol in enumerate(word):
            state = self.step(state, symbol)
            if self.is_dead(state):
                return index
        if self.is_accepting(state):
            return None
        return len(word)


def to_dfa(regex, alphabet=None):
    """Build an explicit DFA from a regex via the derivative construction.

    Args:
        regex: the expression to compile.
        alphabet: iterable of symbols; defaults to the symbols occurring in
            the expression.

    Returns:
        A :class:`repro.automata.dfa.DFA` accepting ``L(regex)``, complete
        over the given alphabet (a sink state is materialized if needed).
    """
    from repro.automata.dfa import DFA

    if alphabet is None:
        alphabet = regex.symbols()
    alphabet = frozenset(alphabet)

    state_ids = {regex: 0}
    order = [regex]
    transitions = {}
    worklist = [regex]
    while worklist:
        state = worklist.pop()
        source = state_ids[state]
        for symbol in alphabet:
            target_expr = derivative(state, symbol)
            target = state_ids.get(target_expr)
            if target is None:
                target = len(order)
                state_ids[target_expr] = target
                order.append(target_expr)
                worklist.append(target_expr)
            transitions[(source, symbol)] = target
    accepting = frozenset(
        state_ids[expr] for expr in order if nullable(expr)
    )
    return DFA(
        states=frozenset(range(len(order))),
        alphabet=alphabet,
        transitions=transitions,
        initial=0,
        accepting=accepting,
    )
