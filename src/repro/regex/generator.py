"""Sampling words from a regular expression's language.

Used by the document generator, the property-based tests and the
benchmarks.  Sampling is recursive over the AST with a size budget; the
``rng`` is any object with ``random()``/``randrange()`` (e.g.
``random.Random``), so sampling is reproducible from a seed.
"""

from __future__ import annotations

from repro.errors import RegexError
from repro.regex.ast import (
    Concat,
    Counter,
    EmptySet,
    Epsilon,
    Interleave,
    Optional,
    Plus,
    Star,
    Symbol,
    UNBOUNDED,
    Union,
    is_empty_language,
    nullable,
)


def shortest_word(regex):
    """Return a shortest word of ``L(regex)`` or ``None`` if it is empty.

    Ties are broken deterministically (leftmost alternative).
    """
    result = _shortest(regex)
    return result


def _shortest(node):
    if isinstance(node, EmptySet):
        return None
    if isinstance(node, Epsilon):
        return []
    if isinstance(node, Symbol):
        return [node.name]
    if isinstance(node, Concat):
        out = []
        for child in node.children:
            part = _shortest(child)
            if part is None:
                return None
            out.extend(part)
        return out
    if isinstance(node, Interleave):
        out = []
        for child in node.children:
            part = _shortest(child)
            if part is None:
                return None
            out.extend(part)
        return out
    if isinstance(node, Union):
        best = None
        for child in node.children:
            part = _shortest(child)
            if part is not None and (best is None or len(part) < len(best)):
                best = part
        return best
    if isinstance(node, (Star, Optional)):
        return []
    if isinstance(node, Plus):
        return _shortest(node.child)
    if isinstance(node, Counter):
        if node.low == 0:
            return []
        part = _shortest(node.child)
        if part is None:
            return None
        return part * node.low
    raise RegexError(f"unknown regex node {node!r}")


def min_word_length(regex):
    """Length of a shortest word, or ``None`` for the empty language."""
    word = shortest_word(regex)
    return None if word is None else len(word)


def sample_word(regex, rng, max_repeat=3):
    """Sample a random word from ``L(regex)``.

    Args:
        regex: the expression to sample from.
        rng: a ``random.Random``-like source.
        max_repeat: soft cap on the number of iterations taken for ``*``,
            ``+`` and unbounded counters.

    Returns:
        A list of symbols.

    Raises:
        RegexError: if the language is empty.
    """
    if is_empty_language(regex):
        raise RegexError("cannot sample from the empty language")
    return _sample(regex, rng, max_repeat)


def _sample(node, rng, max_repeat):
    if isinstance(node, Epsilon):
        return []
    if isinstance(node, Symbol):
        return [node.name]
    if isinstance(node, Concat):
        out = []
        for child in node.children:
            out.extend(_sample(child, rng, max_repeat))
        return out
    if isinstance(node, Union):
        viable = [c for c in node.children if not is_empty_language(c)]
        choice = viable[rng.randrange(len(viable))]
        return _sample(choice, rng, max_repeat)
    if isinstance(node, Interleave):
        streams = [_sample(child, rng, max_repeat) for child in node.children]
        return _shuffle_streams(streams, rng)
    if isinstance(node, Star):
        repeats = rng.randrange(max_repeat + 1)
        out = []
        for __ in range(repeats):
            out.extend(_sample(node.child, rng, max_repeat))
        return out
    if isinstance(node, Plus):
        repeats = 1 + rng.randrange(max_repeat)
        out = []
        for __ in range(repeats):
            out.extend(_sample(node.child, rng, max_repeat))
        return out
    if isinstance(node, Optional):
        if rng.random() < 0.5:
            return []
        return _sample(node.child, rng, max_repeat)
    if isinstance(node, Counter):
        if node.high is UNBOUNDED:
            high = node.low + max_repeat
        else:
            high = node.high
        low = node.low
        if nullable(node.child) and low > 0:
            # Mandatory iterations may be empty; keep them anyway for
            # variety -- sampling the child of a nullable body is fine.
            pass
        repeats = low + rng.randrange(high - low + 1) if high > low else low
        out = []
        for __ in range(repeats):
            out.extend(_sample(node.child, rng, max_repeat))
        return out
    if isinstance(node, EmptySet):
        raise RegexError("cannot sample from the empty language")
    raise RegexError(f"unknown regex node {node!r}")


def _shuffle_streams(streams, rng):
    """Random interleaving of several word streams, order-preserving."""
    indices = [0] * len(streams)
    out = []
    remaining = sum(len(stream) for stream in streams)
    while remaining:
        live = [i for i, stream in enumerate(streams) if indices[i] < len(stream)]
        pick = live[rng.randrange(len(live))]
        out.append(streams[pick][indices[pick]])
        indices[pick] += 1
        remaining -= 1
    return out
