"""Algebraic simplification of regular expressions.

State elimination (Algorithm 2's line 2) produces syntactically bloated
expressions; this module applies language-preserving rewrites so the
generated BonXai rules stay readable.  All rules are classical identities::

    r r*        = r+              r* r        = r+
    r* r*       = r*              (r?)*       = r*
    eps | r     = r?              r | r+      = r+
    r | r       = r               eps r       = r
    (r*)?       = r*              r | r*      = r*

Simplification is bottom-up and iterated to a fixpoint (bounded, since each
applied rule strictly decreases a well-founded measure).
"""

from __future__ import annotations

from repro.regex.ast import (
    Concat,
    Counter,
    EPSILON,
    EmptySet,
    Epsilon,
    Interleave,
    Optional,
    Plus,
    Star,
    Symbol,
    Union,
    concat,
    counter,
    interleave,
    optional,
    plus,
    star,
    union,
)


def simplify(regex, max_rounds=8):
    """Return a language-equivalent, usually smaller expression."""
    current = regex
    for __ in range(max_rounds):
        simplified = _simplify_once(current)
        if simplified == current:
            return simplified
        current = simplified
    return current


def _simplify_once(node):
    if isinstance(node, (EmptySet, Epsilon, Symbol)):
        return node
    if isinstance(node, Concat):
        return _simplify_concat([_simplify_once(c) for c in node.children])
    if isinstance(node, Union):
        return _simplify_union([_simplify_once(c) for c in node.children])
    if isinstance(node, Interleave):
        return interleave(*(_simplify_once(c) for c in node.children))
    if isinstance(node, Star):
        return star(_simplify_once(node.child))
    if isinstance(node, Plus):
        return plus(_simplify_once(node.child))
    if isinstance(node, Optional):
        return optional(_simplify_once(node.child))
    if isinstance(node, Counter):
        return counter(_simplify_once(node.child), node.low, node.high)
    return node


def _iteration_body(node):
    """The body r if node is one of r*, r+, r; plus a tag of which."""
    if isinstance(node, Star):
        return node.child, "star"
    if isinstance(node, Plus):
        return node.child, "plus"
    if isinstance(node, Optional):
        return node.child, "opt"
    return node, "once"


def _simplify_concat(parts):
    # Flatten (the concat() helper will re-flatten, but we need the list
    # locally to apply neighbor rules).
    flat = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.children)
        else:
            flat.append(part)

    changed = True
    while changed:
        changed = False
        result = []
        index = 0
        while index < len(flat):
            current = flat[index]
            if index + 1 < len(flat):
                merged = _merge_pair(current, flat[index + 1])
                if merged is not None:
                    result.append(merged)
                    index += 2
                    changed = True
                    continue
            result.append(current)
            index += 1
        flat = result
    return concat(*flat)


def _merge_pair(left, right):
    """Merge two adjacent concatenation factors when an identity applies."""
    left_body, left_kind = _iteration_body(left)
    right_body, right_kind = _iteration_body(right)
    if left_body != right_body:
        return None
    body = left_body
    kinds = {left_kind, right_kind}
    # r* r* = r*;  r* r? = r? r* = r*
    if kinds <= {"star", "opt"} and "star" in kinds:
        return star(body)
    # r r* = r* r = r+;  r+ r* = r* r+ = r+
    if kinds == {"once", "star"} or kinds == {"plus", "star"}:
        return plus(body)
    # r? r? stays (r? r? != r? in general -- it is r{0,2})
    return None


def _simplify_union(parts):
    flat = []
    for part in parts:
        if isinstance(part, Union):
            flat.extend(part.children)
        else:
            flat.append(part)

    has_epsilon = any(isinstance(part, Epsilon) for part in flat)
    rest = [part for part in flat if not isinstance(part, Epsilon)]

    # Group alternatives by iteration body: r | r+ = r+, r | r* = r*, etc.
    merged = []
    kinds_by_body = {}
    order = []
    for part in rest:
        body, kind = _iteration_body(part)
        if body not in kinds_by_body:
            kinds_by_body[body] = set()
            order.append(body)
        kinds_by_body[body].add(kind)
    for body in order:
        kinds = kinds_by_body[body]
        if "star" in kinds:
            merged.append(star(body))
        elif "opt" in kinds and "plus" in kinds:
            merged.append(star(body))
        elif "opt" in kinds:
            merged.append(optional(body))
        elif "plus" in kinds:
            merged.append(plus(body))
        else:
            merged.append(body)

    result = union(*merged)
    if has_epsilon:
        return optional(result)
    return result
