"""The Brüggemann-Klein & Wood decision procedure [4].

:func:`check_deterministic` decides whether an *expression* is
deterministic.  This module answers the deeper question the paper's UPA
discussion leans on: is the *language* one-unambiguous at all — i.e. does
any equivalent deterministic expression exist?  (Deterministic expressions
denote a strict subclass of the regular languages, which is exactly why
the conversion algorithms must never rebuild content models.)

The BKW characterization works on the minimal (partial, trimmed) DFA:

* Orbits are the strongly connected components; an orbit is *trivial* if
  it is a single state without a self-loop.
* A *gate* of an orbit is a state that is final or has a transition
  leaving the orbit.
* The **orbit property**: all gates of an orbit agree on finality and
  have identical out-of-orbit transitions.
* A symbol ``a`` is *consistent* if all final states move to one common
  state on ``a``; the *S-cut* removes the ``a``-transitions of final
  states for all consistent ``a``.

``L(M)`` is one-unambiguous iff the S-cut of ``M`` (for the set of all
consistent symbols) satisfies the orbit property and all its orbit
languages are one-unambiguous [BKW 1998, Theorems 4.2/4.3].  The
recursion terminates because orbit automata of a properly-cut automaton
are strictly smaller.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.minimize import minimize


def is_one_unambiguous_language(regex_or_dfa, alphabet=None):
    """True iff the language has *some* deterministic expression.

    Args:
        regex_or_dfa: a :class:`~repro.regex.ast.Regex` or a
            :class:`~repro.automata.dfa.DFA`.
        alphabet: alphabet override when passing a regex.
    """
    if isinstance(regex_or_dfa, DFA):
        dfa = regex_or_dfa
    else:
        from repro.regex.derivatives import to_dfa

        dfa = to_dfa(regex_or_dfa, alphabet=alphabet)
    minimal = _trim_partial(minimize(dfa))
    return _bkw(minimal)


def _trim_partial(dfa):
    """Drop the sink: BKW works on the trimmed partial minimal DFA."""
    useful = dfa.to_nfa().trim()
    states = useful.states
    if not states:
        # The empty language: trivially one-unambiguous (#empty).
        return DFA(
            states={0}, alphabet=dfa.alphabet, transitions={},
            initial=0, accepting=frozenset(),
        )
    transitions = {
        (state, symbol): next(iter(targets))
        for (state, symbol), targets in useful.transitions.items()
    }
    (initial,) = useful.initial
    return DFA(
        states=states,
        alphabet=dfa.alphabet,
        transitions=transitions,
        initial=initial,
        accepting=useful.accepting,
    )


def _bkw(dfa):
    if len(dfa.states) <= 1 and not dfa.transitions:
        return True

    consistent = _consistent_symbols(dfa)
    cut = _s_cut(dfa, consistent)
    orbits, orbit_of = _orbits(cut)

    if not _orbit_property(cut, orbits, orbit_of):
        return False

    single_uncut_orbit = (
        len(orbits) == 1
        and len(cut.transitions) == len(dfa.transitions)
        and _is_nontrivial(next(iter(orbits)), cut)
    )
    if single_uncut_orbit:
        # No progress is possible: the language is not one-unambiguous.
        return False

    for orbit in orbits:
        if not _is_nontrivial(orbit, cut):
            continue
        for gate in _gates(cut, orbit):
            if not _bkw(_orbit_automaton(cut, orbit, gate)):
                return False
    return True


def _consistent_symbols(dfa):
    """Symbols on which every final state moves to one common state."""
    if not dfa.accepting:
        return frozenset()
    out = set()
    for symbol in dfa.alphabet:
        targets = {
            dfa.transitions.get((state, symbol)) for state in dfa.accepting
        }
        if len(targets) == 1 and None not in targets:
            out.add(symbol)
    return frozenset(out)


def _s_cut(dfa, symbols):
    transitions = {
        (state, symbol): target
        for (state, symbol), target in dfa.transitions.items()
        if not (state in dfa.accepting and symbol in symbols)
    }
    return DFA(
        states=dfa.states,
        alphabet=dfa.alphabet,
        transitions=transitions,
        initial=dfa.initial,
        accepting=dfa.accepting,
    )


def _orbits(dfa):
    """Strongly connected components (iterative Tarjan)."""
    graph = {state: [] for state in dfa.states}
    for (state, __symbol), target in dfa.transitions.items():
        graph[state].append(target)

    index_counter = [0]
    stack = []
    lowlink = {}
    index = {}
    on_stack = set()
    components = []

    for root in dfa.states:
        if root in index:
            continue
        work = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = index_counter[0]
                lowlink[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = graph[node]
            for offset in range(child_index, len(successors)):
                successor = successors[offset]
                if successor not in index:
                    work.append((node, offset + 1))
                    work.append((successor, 0))
                    recurse = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.remove(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    orbit_of = {}
    for component in components:
        for state in component:
            orbit_of[state] = component
    return components, orbit_of


def _is_nontrivial(orbit, dfa):
    if len(orbit) > 1:
        return True
    (state,) = orbit
    return any(
        dfa.transitions.get((state, symbol)) == state
        for symbol in dfa.alphabet
    )


def _gates(dfa, orbit):
    gates = []
    for state in sorted(orbit, key=repr):
        if state in dfa.accepting:
            gates.append(state)
            continue
        for symbol in dfa.alphabet:
            target = dfa.transitions.get((state, symbol))
            if target is not None and target not in orbit:
                gates.append(state)
                break
    return gates


def _orbit_property(dfa, orbits, orbit_of):
    for orbit in orbits:
        gates = _gates(dfa, orbit)
        if len(gates) < 2:
            continue
        reference = _signature(dfa, gates[0], orbit)
        for gate in gates[1:]:
            if _signature(dfa, gate, orbit) != reference:
                return False
    return True


def _signature(dfa, state, orbit):
    outside = frozenset(
        (symbol, target)
        for symbol in dfa.alphabet
        for target in (dfa.transitions.get((state, symbol)),)
        if target is not None and target not in orbit
    )
    return (state in dfa.accepting, outside)


def _orbit_automaton(dfa, orbit, gate):
    transitions = {
        (state, symbol): target
        for (state, symbol), target in dfa.transitions.items()
        if state in orbit and target in orbit
    }
    return DFA(
        states=orbit,
        alphabet=dfa.alphabet,
        transitions=transitions,
        initial=gate,
        accepting=frozenset(_gates(dfa, orbit)),
    )
