"""Abstract syntax trees for regular expressions over element names.

The grammar follows Section 4.1 of the paper::

    r ::= eps | empty | a | r r | r + r | (r)? | (r)+ | (r)*

extended with the two operators of the practical language (Section 3.1):
counting ``r{n,m}`` and interleaving ``r & s`` (the ``xs:all`` analogue).

Nodes are immutable and hashable; structural equality is value equality.
The *size* of an expression is its number of alphabet-symbol occurrences,
exactly as the paper defines it (``aaa`` and ``a(b+c)?`` both have size 3).

Construction helpers (:func:`concat`, :func:`union`, ...) perform the cheap
local normalizations that keep machine-generated expressions readable
(dropping ``eps`` in concatenations, collapsing nested unions, and so on)
without changing the denoted language.
"""

from __future__ import annotations

from repro.errors import RegexError

UNBOUNDED = None
"""Sentinel for an unbounded counter upper limit, as in ``a{2,*}``."""


class Regex:
    """Base class of all regular expression nodes.

    Subclasses are value objects: two nodes compare equal iff they are
    structurally identical.  All combinator operators are overloaded so
    expressions can be written naturally in code::

        r = (sym("a") + sym("b")) | sym("c").star()
    """

    __slots__ = ()

    # -- combinators -----------------------------------------------------
    def __add__(self, other):
        """Concatenation: ``r + s`` denotes ``r s``."""
        return concat(self, other)

    def __or__(self, other):
        """Union: ``r | s`` denotes ``r + s`` in the paper's notation."""
        return union(self, other)

    def __and__(self, other):
        """Interleaving (shuffle): ``r & s``."""
        return interleave(self, other)

    def star(self):
        """Kleene closure ``r*``."""
        return star(self)

    def plus(self):
        """One-or-more ``r+``."""
        return plus(self)

    def opt(self):
        """Zero-or-one ``r?``."""
        return optional(self)

    def times(self, low, high=UNBOUNDED):
        """Counting ``r{low,high}``; ``high=None`` means unbounded."""
        return counter(self, low, high)

    # -- metadata --------------------------------------------------------
    @property
    def size(self):
        """Number of alphabet symbol occurrences (the paper's size measure)."""
        raise NotImplementedError

    def symbols(self):
        """The set of alphabet symbols occurring in the expression."""
        out = set()
        _collect_symbols(self, out)
        return out

    def __repr__(self):
        from repro.regex.printer import to_string

        return f"{type(self).__name__}({to_string(self)!r})"

    def __str__(self):
        from repro.regex.printer import to_string

        return to_string(self)


class EmptySet(Regex):
    """The empty language (the paper's ``∅``)."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    @property
    def size(self):
        return 0

    def __eq__(self, other):
        return isinstance(other, EmptySet)

    def __hash__(self):
        return hash(EmptySet)


class Epsilon(Regex):
    """The language containing only the empty string (the paper's ``ε``)."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    @property
    def size(self):
        return 0

    def __eq__(self, other):
        return isinstance(other, Epsilon)

    def __hash__(self):
        return hash(Epsilon)


class Symbol(Regex):
    """A single alphabet symbol (an element name)."""

    __slots__ = ("name",)

    def __init__(self, name):
        if not name:
            raise RegexError("symbol name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):
        raise AttributeError("Regex nodes are immutable")

    @property
    def size(self):
        return 1

    def __eq__(self, other):
        return isinstance(other, Symbol) and self.name == other.name

    def __hash__(self):
        return hash((Symbol, self.name))


class _Nary(Regex):
    """Shared implementation of n-ary nodes (Concat, Union, Interleave)."""

    __slots__ = ("children",)

    def __init__(self, children):
        children = tuple(children)
        if len(children) < 2:
            raise RegexError(
                f"{type(self).__name__} requires at least two children; "
                f"use the construction helpers for normalization"
            )
        object.__setattr__(self, "children", children)

    def __setattr__(self, key, value):
        raise AttributeError("Regex nodes are immutable")

    @property
    def size(self):
        return sum(child.size for child in self.children)

    def __eq__(self, other):
        return type(self) is type(other) and self.children == other.children

    def __hash__(self):
        return hash((type(self), self.children))


class Concat(_Nary):
    """Concatenation of two or more expressions."""

    __slots__ = ()


class Union(_Nary):
    """Union (disjunction) of two or more expressions."""

    __slots__ = ()


class Interleave(_Nary):
    """Interleaving (shuffle) of two or more expressions (``&`` / xs:all)."""

    __slots__ = ()


class _Unary(Regex):
    """Shared implementation of unary nodes (Star, Plus, Optional)."""

    __slots__ = ("child",)

    def __init__(self, child):
        object.__setattr__(self, "child", child)

    def __setattr__(self, key, value):
        raise AttributeError("Regex nodes are immutable")

    @property
    def size(self):
        return self.child.size

    def __eq__(self, other):
        return type(self) is type(other) and self.child == other.child

    def __hash__(self):
        return hash((type(self), self.child))


class Star(_Unary):
    """Kleene closure ``r*``."""

    __slots__ = ()


class Plus(_Unary):
    """One-or-more ``r+``."""

    __slots__ = ()


class Optional(_Unary):
    """Zero-or-one ``r?``."""

    __slots__ = ()


class Counter(Regex):
    """Counting ``r{low,high}``; ``high is UNBOUNDED`` means no upper limit."""

    __slots__ = ("child", "low", "high")

    def __init__(self, child, low, high):
        if low < 0:
            raise RegexError(f"counter lower bound must be >= 0, got {low}")
        if high is not UNBOUNDED and high < low:
            raise RegexError(f"counter upper bound {high} below lower bound {low}")
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    def __setattr__(self, key, value):
        raise AttributeError("Regex nodes are immutable")

    @property
    def size(self):
        return self.child.size

    def __eq__(self, other):
        return (
            isinstance(other, Counter)
            and self.child == other.child
            and self.low == other.low
            and self.high == other.high
        )

    def __hash__(self):
        return hash((Counter, self.child, self.low, self.high))


EMPTY = EmptySet()
EPSILON = Epsilon()


# ---------------------------------------------------------------------------
# Construction helpers (lightweight normalization)
# ---------------------------------------------------------------------------

def sym(name):
    """Build a :class:`Symbol` node."""
    return Symbol(name)


def concat(*parts):
    """Concatenate expressions, flattening nested concatenations.

    ``eps`` factors are dropped and any ``empty`` factor collapses the whole
    concatenation to ``empty``.  With no (remaining) parts the result is
    ``eps``.
    """
    flat = []
    for part in parts:
        if isinstance(part, EmptySet):
            return EMPTY
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.children)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(flat)


def union(*parts):
    """Union of expressions, flattening nested unions and dropping ``empty``.

    Duplicate alternatives are removed (keeping first occurrence).  With no
    remaining parts the result is ``empty``.
    """
    flat = []
    seen = set()
    for part in parts:
        if isinstance(part, EmptySet):
            continue
        if isinstance(part, Union):
            candidates = part.children
        else:
            candidates = (part,)
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                flat.append(candidate)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Union(flat)


def interleave(*parts):
    """Interleaving of expressions, flattening nested interleavings."""
    flat = []
    for part in parts:
        if isinstance(part, EmptySet):
            return EMPTY
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Interleave):
            flat.extend(part.children)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Interleave(flat)


def star(child):
    """Kleene star with local normalization (``∅* = ε* = ε``, ``r** = r*``)."""
    if isinstance(child, (EmptySet, Epsilon)):
        return EPSILON
    if isinstance(child, Star):
        return child
    if isinstance(child, (Plus, Optional)):
        return Star(child.child)
    return Star(child)


def plus(child):
    """One-or-more with local normalization."""
    if isinstance(child, EmptySet):
        return EMPTY
    if isinstance(child, Epsilon):
        return EPSILON
    if isinstance(child, (Star, Optional)):
        return star(child.child)
    if isinstance(child, Plus):
        return child
    return Plus(child)


def optional(child):
    """Zero-or-one with local normalization."""
    if isinstance(child, (EmptySet, Epsilon)):
        return EPSILON
    if isinstance(child, (Star, Optional)):
        return child
    if isinstance(child, Plus):
        return Star(child.child)
    return Optional(child)


def counter(child, low, high=UNBOUNDED):
    """Counting with local normalization of trivial bounds."""
    if low == 0 and high == 0:
        return EPSILON
    if low == 1 and high == 1:
        return child
    if low == 0 and high is UNBOUNDED:
        return star(child)
    if low == 1 and high is UNBOUNDED:
        return plus(child)
    if low == 0 and high == 1:
        return optional(child)
    if isinstance(child, EmptySet):
        return EMPTY if low > 0 else EPSILON
    if isinstance(child, Epsilon):
        return EPSILON
    return Counter(child, low, high)


def alternation(names):
    """Union of single symbols, the paper's set abbreviation ``(a1+...+an)``."""
    return union(*(Symbol(name) for name in names))


def universal(alphabet):
    """``EName*``: the universal language over the given alphabet."""
    return star(alternation(sorted(alphabet)))


def _collect_symbols(node, out):
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Symbol):
            out.add(current.name)
        elif isinstance(current, _Nary):
            stack.extend(current.children)
        elif isinstance(current, _Unary):
            stack.append(current.child)
        elif isinstance(current, Counter):
            stack.append(current.child)


# ---------------------------------------------------------------------------
# Structural predicates shared across the engine
# ---------------------------------------------------------------------------

def nullable(node):
    """Return True iff the expression's language contains the empty string."""
    if isinstance(node, (Epsilon, Star, Optional)):
        return True
    if isinstance(node, (EmptySet, Symbol)):
        return False
    if isinstance(node, (Concat, Interleave)):
        return all(nullable(child) for child in node.children)
    if isinstance(node, Union):
        return any(nullable(child) for child in node.children)
    if isinstance(node, Plus):
        return nullable(node.child)
    if isinstance(node, Counter):
        return node.low == 0 or nullable(node.child)
    raise RegexError(f"unknown regex node {node!r}")


def is_empty_language(node):
    """Return True iff the expression denotes the empty language."""
    if isinstance(node, EmptySet):
        return True
    if isinstance(node, (Epsilon, Symbol)):
        return False
    if isinstance(node, (Concat, Interleave)):
        return any(is_empty_language(child) for child in node.children)
    if isinstance(node, Union):
        return all(is_empty_language(child) for child in node.children)
    if isinstance(node, (Star, Optional)):
        return False  # both are nullable, hence contain epsilon
    if isinstance(node, Plus):
        return is_empty_language(node.child)
    if isinstance(node, Counter):
        return node.low > 0 and is_empty_language(node.child)
    raise RegexError(f"unknown regex node {node!r}")


def contains_interleave(node):
    """Return True iff an ``&`` operator occurs anywhere in the expression."""
    if isinstance(node, Interleave):
        return True
    if isinstance(node, _Nary):
        return any(contains_interleave(child) for child in node.children)
    if isinstance(node, (_Unary, Counter)):
        return contains_interleave(node.child)
    return False


def contains_counter(node):
    """Return True iff a counting operator occurs anywhere in the expression."""
    if isinstance(node, Counter):
        return True
    if isinstance(node, _Nary):
        return any(contains_counter(child) for child in node.children)
    if isinstance(node, _Unary):
        return contains_counter(node.child)
    return False


def expand_counters(node, limit=256):
    """Rewrite counters into concatenations of copies (bounded unrolling).

    ``r{n,m}`` becomes ``r^n (r?)^(m-n)`` and ``r{n,*}`` becomes ``r^n r*``.
    The expansion is used when an automaton is required; matching uses the
    derivative engine which handles counters natively.

    Raises:
        RegexError: if the unrolled form would exceed ``limit`` copies.
    """
    if isinstance(node, (EmptySet, Epsilon, Symbol)):
        return node
    if isinstance(node, Concat):
        return concat(*(expand_counters(child, limit) for child in node.children))
    if isinstance(node, Union):
        return union(*(expand_counters(child, limit) for child in node.children))
    if isinstance(node, Interleave):
        return interleave(*(expand_counters(child, limit) for child in node.children))
    if isinstance(node, Star):
        return star(expand_counters(node.child, limit))
    if isinstance(node, Plus):
        return plus(expand_counters(node.child, limit))
    if isinstance(node, Optional):
        return optional(expand_counters(node.child, limit))
    if isinstance(node, Counter):
        child = expand_counters(node.child, limit)
        copies = node.low if node.high is UNBOUNDED else node.high
        if copies > limit:
            raise RegexError(
                f"counter expansion of {{{node.low},{node.high}}} exceeds "
                f"limit {limit}"
            )
        parts = [child] * node.low
        if node.high is UNBOUNDED:
            parts.append(star(child))
        else:
            # Nested optionals -- r r (r (r)?)? for r{2,4} -- so that the
            # unrolled form is deterministic exactly when the counted form
            # is (a flat r r r? r? would create spurious UPA conflicts).
            tail = EPSILON
            for __ in range(node.high - node.low):
                tail = optional(concat(child, tail))
            parts.append(tail)
        return concat(*parts)
    raise RegexError(f"unknown regex node {node!r}")
