"""Glushkov (position) automaton construction.

The Glushkov automaton of an expression has one state per *position*
(occurrence of an alphabet symbol) plus a fresh initial state.  Its
transition structure is given by the classical ``first``/``last``/``follow``
sets.  The construction is the basis of the one-unambiguity (UPA) test: an
expression is deterministic iff its Glushkov automaton is a DFA
[Brüggemann-Klein & Wood 1998].

Counters are unrolled before position computation (they change the set of
positions); interleaving is supported directly — ``first``/``last``/
``follow`` of a shuffle are the natural componentwise combinations, and the
resulting automaton over-approximates determinism exactly the way the XSD
``xs:all`` restrictions require.
"""

from __future__ import annotations

from repro.errors import RegexError
from repro.regex.ast import (
    Concat,
    Counter,
    EmptySet,
    Epsilon,
    Interleave,
    Optional,
    Plus,
    Star,
    Symbol,
    Union,
    expand_counters,
    nullable,
)


class Positions:
    """The classical position sets of an expression.

    Attributes:
        labels: mapping position -> symbol name.
        first: positions that can start a word.
        last: positions that can end a word.
        follow: mapping position -> set of positions that may follow it.
        accepts_empty: whether the expression is nullable.
    """

    __slots__ = ("labels", "first", "last", "follow", "accepts_empty")

    def __init__(self, labels, first, last, follow, accepts_empty):
        self.labels = labels
        self.first = first
        self.last = last
        self.follow = follow
        self.accepts_empty = accepts_empty


def positions(regex, unroll_counters=True):
    """Compute the position sets of ``regex``.

    Args:
        regex: the expression to analyze.
        unroll_counters: expand ``{n,m}`` counters first (required, since
            positions of a counter body repeat).

    Returns:
        A :class:`Positions` record.
    """
    if unroll_counters:
        regex = expand_counters(regex)
    labels = {}
    counterpart = _number(regex, labels, counter=[0])
    first, last, follow, accepts_empty = _analyze(counterpart, labels)
    return Positions(labels, first, last, follow, accepts_empty)


# Internal marked representation: every Symbol is replaced by its position
# (an int); other nodes are (tag, children...) tuples so the analysis is a
# plain recursion with no AST mutation.

def _number(node, labels, counter):
    if isinstance(node, EmptySet):
        return ("empty",)
    if isinstance(node, Epsilon):
        return ("eps",)
    if isinstance(node, Symbol):
        position = counter[0]
        counter[0] += 1
        labels[position] = node.name
        return ("sym", position)
    if isinstance(node, Concat):
        return ("cat", [_number(c, labels, counter) for c in node.children])
    if isinstance(node, Union):
        return ("alt", [_number(c, labels, counter) for c in node.children])
    if isinstance(node, Interleave):
        raise RegexError(
            "interleaving has no position automaton; lower '&' first "
            "(repro.bonxai.compile) or use the derivative engine"
        )
    if isinstance(node, Star):
        return ("star", _number(node.child, labels, counter))
    if isinstance(node, Plus):
        return ("plus", _number(node.child, labels, counter))
    if isinstance(node, Optional):
        return ("opt", _number(node.child, labels, counter))
    if isinstance(node, Counter):
        raise RegexError("counters must be unrolled before position analysis")
    raise RegexError(f"unknown regex node {node!r}")


def _analyze(marked, labels):
    follow = {position: set() for position in labels}

    def recurse(node):
        """Return (first, last, nullable) and populate ``follow``."""
        tag = node[0]
        if tag == "empty":
            return frozenset(), frozenset(), False
        if tag == "eps":
            return frozenset(), frozenset(), True
        if tag == "sym":
            singleton = frozenset((node[1],))
            return singleton, singleton, False
        if tag == "cat":
            parts = [recurse(child) for child in node[1]]
            first = set()
            for part_first, __, part_nullable in parts:
                first |= part_first
                if not part_nullable:
                    break
            last = set()
            for part_first, part_last, part_nullable in reversed(parts):
                last |= part_last
                if not part_nullable:
                    break
            for index in range(len(parts) - 1):
                # follow(last of part i) includes first of the next
                # non-empty stretch (skipping nullable parts).
                __, left_last, __nullable = parts[index]
                for jump in range(index + 1, len(parts)):
                    right_first, __, right_nullable = parts[jump]
                    for position in left_last:
                        follow[position] |= right_first
                    if not right_nullable:
                        break
            is_nullable = all(part[2] for part in parts)
            return frozenset(first), frozenset(last), is_nullable
        if tag == "alt":
            parts = [recurse(child) for child in node[1]]
            first = frozenset().union(*(p[0] for p in parts))
            last = frozenset().union(*(p[1] for p in parts))
            return first, last, any(p[2] for p in parts)
        if tag == "star":
            first, last, __ = recurse(node[1])
            for position in last:
                follow[position] |= first
            return first, last, True
        if tag == "plus":
            first, last, is_nullable = recurse(node[1])
            for position in last:
                follow[position] |= first
            return first, last, is_nullable
        if tag == "opt":
            first, last, __ = recurse(node[1])
            return first, last, True
        raise RegexError(f"unknown marked node {tag!r}")

    first, last, accepts_empty = recurse(marked)
    return first, last, follow, accepts_empty


def _positions_of(marked):
    out = set()
    stack = [marked]
    while stack:
        node = stack.pop()
        tag = node[0]
        if tag == "sym":
            out.add(node[1])
        elif tag in ("cat", "alt", "shuf"):
            stack.extend(node[1])
        elif tag in ("star", "plus", "opt"):
            stack.append(node[1])
    return out


def glushkov_nfa(regex, alphabet=None):
    """Build the Glushkov NFA of ``regex``.

    States are ``-1`` (initial) and the positions ``0..k-1``.

    Returns:
        A :class:`repro.automata.nfa.NFA` accepting ``L(regex)``.
    """
    from repro.automata.nfa import NFA

    info = positions(regex)
    if alphabet is None:
        alphabet = frozenset(info.labels.values()) | regex.symbols()

    transitions = {}

    def add(source, target):
        symbol = info.labels[target]
        transitions.setdefault((source, symbol), set()).add(target)

    for target in info.first:
        add(-1, target)
    for source, followers in info.follow.items():
        for target in followers:
            add(source, target)

    accepting = set(info.last)
    if info.accepts_empty:
        accepting.add(-1)

    states = frozenset(info.labels) | {-1}
    return NFA(
        states=states,
        alphabet=frozenset(alphabet),
        transitions={key: frozenset(value) for key, value in transitions.items()},
        initial=frozenset((-1,)),
        accepting=frozenset(accepting),
    )
