"""State elimination: converting automata to regular expressions.

This is the expensive half of Algorithm 2 ("r_q := a regular expression for
(Q, EName, delta, q0, {q})"); the worst case is exponential (Ehrenfeucht &
Zeiger, reproduced as Theorem 8), but elimination order and algebraic
simplification make realistic inputs small.

The implementation works on a GNFA (generalized NFA whose edges are labeled
with regular expressions) and removes interior states one at a time, in
order of increasing ``in-degree * out-degree`` weight, resplicing paths as
``in . loop* . out``.
"""

from __future__ import annotations

from repro.observability import default_registry, resolve_budget
from repro.regex.ast import EMPTY, EPSILON, Regex, Symbol, concat, star, union
from repro.regex.simplify import simplify as simplify_regex


def dfa_to_regex(dfa, accepting=None, simplify=True, budget=None):
    """A regular expression for the language of ``dfa``.

    Args:
        dfa: the automaton (a partial or complete :class:`DFA`).
        accepting: optional override of the accepting-state set; Algorithm 2
            calls this once per state ``q`` with ``accepting={q}``.
        simplify: run the algebraic simplifier on intermediate labels.
        budget: optional :class:`~repro.observability.ResourceBudget`
            (falls back to the ambient one); intermediate label sizes and
            the wall clock are checked each elimination round, so the
            Theorem-8 exponential blow-up is refused rather than endured.

    Returns:
        A :class:`~repro.regex.ast.Regex`; ``EMPTY`` for the empty language.
    """
    if accepting is None:
        accepting = dfa.accepting
    return nfa_to_regex(
        dfa.to_nfa(), accepting=accepting, simplify=simplify, budget=budget
    )


def nfa_to_regex(nfa, accepting=None, simplify=True, budget=None):
    """A regular expression for the language of ``nfa`` (state elimination)."""
    budget = resolve_budget(budget)
    if accepting is None:
        accepting = nfa.accepting
    accepting = frozenset(accepting)

    reducer = simplify_regex if simplify else (lambda regex: regex)

    # Build the GNFA edge map with fresh source/sink endpoints.
    source = ("__gnfa__", "source")
    sink = ("__gnfa__", "sink")
    edges = {}

    def add_edge(origin, target, label):
        key = (origin, target)
        existing = edges.get(key)
        edges[key] = label if existing is None else union(existing, label)

    for (state, symbol), targets in nfa.transitions.items():
        for target in targets:
            add_edge(state, target, Symbol(symbol))
    for state in nfa.initial:
        add_edge(source, state, EPSILON)
    for state in accepting:
        add_edge(state, sink, EPSILON)

    interior = [state for state in nfa.states]

    def weight(state):
        incoming = sum(1 for (origin, target) in edges if target == state)
        outgoing = sum(1 for (origin, target) in edges if origin == state)
        return incoming * outgoing

    eliminated = 0
    while interior:
        if budget is not None:
            budget.check_time(where="automata.state_elimination")
        interior.sort(key=lambda state: (weight(state), repr(state)))
        victim = interior.pop(0)
        eliminated += 1
        loop = edges.pop((victim, victim), None)
        loop_star = EPSILON if loop is None else star(loop)
        incoming = [
            (origin, label)
            for (origin, target), label in edges.items()
            if target == victim and origin != victim
        ]
        outgoing = [
            (target, label)
            for (origin, target), label in edges.items()
            if origin == victim and target != victim
        ]
        for origin, __ in incoming:
            edges.pop((origin, victim), None)
        for target, __ in outgoing:
            edges.pop((victim, target), None)
        for origin, in_label in incoming:
            for target, out_label in outgoing:
                label = reducer(concat(in_label, loop_star, out_label))
                if budget is not None:
                    budget.charge_regex(
                        label.size, where="automata.state_elimination"
                    )
                add_edge(origin, target, label)

    result = reducer(edges.get((source, sink), EMPTY))
    registry = default_registry()
    registry.counter("automata.state_elimination.eliminated").inc(eliminated)
    registry.histogram("automata.state_elimination.regex_size").observe(
        result.size
    )
    return result
