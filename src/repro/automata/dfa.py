"""Deterministic finite automata.

DFAs here are *partial* by default: a missing transition means the word is
rejected (equivalently, leads to an implicit sink).  :meth:`DFA.completed`
materializes the sink when a complete automaton is needed (Algorithm 3 uses
minimal *complete* DFAs).  States can be arbitrary hashable objects.
"""

from __future__ import annotations

from repro.errors import SchemaError


class DFA:
    """A (possibly partial) deterministic finite automaton.

    Attributes:
        states: frozenset of states.
        alphabet: frozenset of symbols.
        transitions: mapping ``(state, symbol) -> state``.
        initial: the initial state.
        accepting: frozenset of accepting states.
    """

    __slots__ = ("states", "alphabet", "transitions", "initial", "accepting")

    def __init__(self, states, alphabet, transitions, initial, accepting):
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.transitions = dict(transitions)
        self.initial = initial
        self.accepting = frozenset(accepting)
        self._check()

    def _check(self):
        if self.initial not in self.states:
            raise SchemaError("initial state must be a state")
        if not self.accepting <= self.states:
            raise SchemaError("accepting states must be states")
        for (source, symbol), target in self.transitions.items():
            if source not in self.states:
                raise SchemaError(f"transition from unknown state {source!r}")
            if symbol not in self.alphabet:
                raise SchemaError(f"transition on unknown symbol {symbol!r}")
            if target not in self.states:
                raise SchemaError(f"transition to unknown state {target!r}")

    def __len__(self):
        """The paper's size measure: the number of states."""
        return len(self.states)

    def successor(self, state, symbol):
        """The unique successor, or ``None`` when undefined (partial DFA)."""
        return self.transitions.get((state, symbol))

    def run(self, word):
        """The state reached after ``word``, or ``None`` if the run dies."""
        current = self.initial
        for symbol in word:
            current = self.transitions.get((current, symbol))
            if current is None:
                return None
        return current

    def accepts(self, word):
        """Return True iff the DFA accepts ``word``."""
        state = self.run(word)
        return state is not None and state in self.accepting

    def is_complete(self):
        """True iff every (state, symbol) pair has a transition."""
        return all(
            (state, symbol) in self.transitions
            for state in self.states
            for symbol in self.alphabet
        )

    def completed(self, sink="__sink__"):
        """Return a complete DFA, adding a non-accepting sink if needed."""
        if self.is_complete():
            return self
        while sink in self.states:
            sink = sink + "_"
        states = set(self.states)
        states.add(sink)
        transitions = dict(self.transitions)
        for state in states:
            for symbol in self.alphabet:
                transitions.setdefault((state, symbol), sink)
        return DFA(
            states=states,
            alphabet=self.alphabet,
            transitions=transitions,
            initial=self.initial,
            accepting=self.accepting,
        )

    def reachable_states(self):
        """States reachable from the initial state."""
        seen = {self.initial}
        worklist = [self.initial]
        while worklist:
            state = worklist.pop()
            for symbol in self.alphabet:
                target = self.transitions.get((state, symbol))
                if target is not None and target not in seen:
                    seen.add(target)
                    worklist.append(target)
        return frozenset(seen)

    def trimmed(self):
        """Restrict to reachable states (keeps completeness only if it holds
        trivially; use :meth:`completed` afterwards when needed)."""
        keep = self.reachable_states()
        transitions = {
            key: target
            for key, target in self.transitions.items()
            if key[0] in keep and target in keep
        }
        return DFA(
            states=keep,
            alphabet=self.alphabet,
            transitions=transitions,
            initial=self.initial,
            accepting=self.accepting & keep,
        )

    def to_nfa(self):
        """View this DFA as an NFA."""
        from repro.automata.nfa import NFA

        transitions = {
            key: frozenset((target,))
            for key, target in self.transitions.items()
        }
        return NFA(
            states=self.states,
            alphabet=self.alphabet,
            transitions=transitions,
            initial=frozenset((self.initial,)),
            accepting=self.accepting,
        )

    def renumbered(self):
        """An isomorphic DFA over ``0..n-1`` (stable BFS numbering)."""
        mapping = {self.initial: 0}
        order = [self.initial]
        index = 0
        while index < len(order):
            state = order[index]
            index += 1
            for symbol in sorted(self.alphabet):
                target = self.transitions.get((state, symbol))
                if target is not None and target not in mapping:
                    mapping[target] = len(mapping)
                    order.append(target)
        for state in sorted(self.states - set(mapping), key=repr):
            mapping[state] = len(mapping)
        transitions = {
            (mapping[source], symbol): mapping[target]
            for (source, symbol), target in self.transitions.items()
        }
        return DFA(
            states=frozenset(mapping.values()),
            alphabet=self.alphabet,
            transitions=transitions,
            initial=0,
            accepting=frozenset(mapping[s] for s in self.accepting),
        )

    def accepts_nothing(self):
        """True iff the accepted language is empty."""
        return not (self.reachable_states() & self.accepting)
