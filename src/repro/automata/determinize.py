"""Subset construction: NFA -> DFA.

Only reachable subsets are materialized.  The resulting DFA is partial (the
empty subset is never created); call :meth:`DFA.completed` when a complete
automaton is required.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.observability import default_registry, resolve_budget


def determinize(nfa, budget=None):
    """Determinize ``nfa`` by the subset construction.

    Args:
        nfa: the automaton to determinize.
        budget: optional :class:`~repro.observability.ResourceBudget`
            (falls back to the ambient one); each materialized subset is
            charged, bounding the worst-case ``2^n`` explosion.

    Returns:
        A partial :class:`DFA` over frozenset-of-states subsets, renumbered
        to integers for compactness.
    """
    budget = resolve_budget(budget)
    initial = nfa.initial
    subsets = {initial: 0}
    order = [initial]
    transitions = {}
    worklist = [initial]
    if budget is not None:
        budget.charge_states(1, where="automata.determinize")
    while worklist:
        subset = worklist.pop()
        source = subsets[subset]
        for symbol in nfa.alphabet:
            target_subset = nfa.step(subset, symbol)
            if not target_subset:
                continue
            target = subsets.get(target_subset)
            if target is None:
                target = len(order)
                subsets[target_subset] = target
                order.append(target_subset)
                worklist.append(target_subset)
                if budget is not None:
                    budget.charge_states(1, where="automata.determinize")
            transitions[(source, symbol)] = target
    default_registry().counter("automata.determinize.states").inc(len(order))
    accepting = frozenset(
        subsets[subset] for subset in order if subset & nfa.accepting
    )
    return DFA(
        states=frozenset(range(len(order))),
        alphabet=nfa.alphabet,
        transitions=transitions,
        initial=0,
        accepting=accepting,
    )
