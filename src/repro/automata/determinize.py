"""Subset construction: NFA -> DFA.

Only reachable subsets are materialized.  The resulting DFA is partial (the
empty subset is never created); call :meth:`DFA.completed` when a complete
automaton is required.
"""

from __future__ import annotations

from repro.automata.dfa import DFA


def determinize(nfa):
    """Determinize ``nfa`` by the subset construction.

    Returns:
        A partial :class:`DFA` over frozenset-of-states subsets, renumbered
        to integers for compactness.
    """
    initial = nfa.initial
    subsets = {initial: 0}
    order = [initial]
    transitions = {}
    worklist = [initial]
    while worklist:
        subset = worklist.pop()
        source = subsets[subset]
        for symbol in nfa.alphabet:
            target_subset = nfa.step(subset, symbol)
            if not target_subset:
                continue
            target = subsets.get(target_subset)
            if target is None:
                target = len(order)
                subsets[target_subset] = target
                order.append(target_subset)
                worklist.append(target_subset)
            transitions[(source, symbol)] = target
    accepting = frozenset(
        subsets[subset] for subset in order if subset & nfa.accepting
    )
    return DFA(
        states=frozenset(range(len(order))),
        alphabet=nfa.alphabet,
        transitions=transitions,
        initial=0,
        accepting=accepting,
    )
