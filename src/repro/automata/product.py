"""Product constructions on DFAs.

:func:`product_dfa` is the (reachable-only) synchronous product used by
Algorithm 3: given complete DFAs ``A_1 .. A_n``, the product runs them in
lockstep; each product state is the tuple of component states.

:func:`pair_product` implements binary products with an arbitrary acceptance
combiner (intersection, union, difference) for the language operations.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.errors import SchemaError
from repro.observability import default_registry, resolve_budget


def product_dfa(components, alphabet=None, budget=None):
    """The reachable synchronous product of complete DFAs.

    Args:
        components: sequence of complete :class:`DFA` objects over a common
            alphabet.
        alphabet: optional explicit alphabet (defaults to the union; all
            components must be complete over it).
        budget: optional :class:`~repro.observability.ResourceBudget`
            (falls back to the ambient one); every product state created
            is charged, so the exponential blow-up of Lemma 6 trips
            :class:`~repro.errors.BudgetExceeded` instead of running away.

    Returns:
        A pair ``(dfa, tuples)`` where ``dfa`` has integer states and
        ``tuples[state]`` is the component-state tuple it represents.  The
        product carries no accepting states of its own (callers derive what
        they need from the tuples, e.g. Algorithm 3's lambda assignment).
    """
    if not components:
        raise SchemaError("product of zero automata is undefined")
    if alphabet is None:
        alphabet = frozenset().union(*(dfa.alphabet for dfa in components))
    for index, dfa in enumerate(components):
        for state in dfa.states:
            for symbol in alphabet:
                if (state, symbol) not in dfa.transitions:
                    raise SchemaError(
                        f"component {index} is not complete over the "
                        f"product alphabet (missing {symbol!r})"
                    )

    budget = resolve_budget(budget)
    initial = tuple(dfa.initial for dfa in components)
    ids = {initial: 0}
    tuples = [initial]
    transitions = {}
    worklist = [initial]
    if budget is not None:
        budget.charge_states(1, where="automata.product")
    while worklist:
        current = worklist.pop()
        source = ids[current]
        for symbol in alphabet:
            target_tuple = tuple(
                dfa.transitions[(state, symbol)]
                for dfa, state in zip(components, current)
            )
            target = ids.get(target_tuple)
            if target is None:
                target = len(tuples)
                ids[target_tuple] = target
                tuples.append(target_tuple)
                worklist.append(target_tuple)
                if budget is not None:
                    budget.charge_states(1, where="automata.product")
            transitions[(source, symbol)] = target
    default_registry().counter("automata.product.states").inc(len(tuples))
    dfa = DFA(
        states=frozenset(range(len(tuples))),
        alphabet=alphabet,
        transitions=transitions,
        initial=0,
        accepting=frozenset(),
    )
    return dfa, tuples


def pair_product(left, right, combine, budget=None):
    """Binary product with acceptance decided by ``combine(in_l, in_r)``.

    Both inputs are completed over the union alphabet first, so set
    difference and symmetric difference work as expected.  State creation
    is charged to the (explicit or ambient) resource budget.
    """
    budget = resolve_budget(budget)
    alphabet = left.alphabet | right.alphabet
    left = DFA(
        left.states, alphabet, left.transitions, left.initial, left.accepting
    ).completed()
    right = DFA(
        right.states, alphabet, right.transitions, right.initial, right.accepting
    ).completed()

    initial = (left.initial, right.initial)
    ids = {initial: 0}
    order = [initial]
    transitions = {}
    worklist = [initial]
    if budget is not None:
        budget.charge_states(1, where="automata.pair_product")
    while worklist:
        current = worklist.pop()
        source = ids[current]
        for symbol in alphabet:
            target_tuple = (
                left.transitions[(current[0], symbol)],
                right.transitions[(current[1], symbol)],
            )
            target = ids.get(target_tuple)
            if target is None:
                target = len(order)
                ids[target_tuple] = target
                order.append(target_tuple)
                worklist.append(target_tuple)
                if budget is not None:
                    budget.charge_states(1, where="automata.pair_product")
            transitions[(source, symbol)] = target
    default_registry().counter("automata.pair_product.states").inc(len(order))
    accepting = frozenset(
        ids[(l_state, r_state)]
        for (l_state, r_state) in order
        if combine(l_state in left.accepting, r_state in right.accepting)
    )
    return DFA(
        states=frozenset(range(len(order))),
        alphabet=alphabet,
        transitions=transitions,
        initial=0,
        accepting=accepting,
    )
