"""Nondeterministic finite automata.

The paper denotes an NFA as ``A = (Q, EName, delta, q0, F)``; we allow a
*set* of initial states (convenient for constructions) — a singleton set
recovers the paper's definition.  States can be arbitrary hashable objects.
There are no epsilon transitions: all our constructions (Glushkov,
derivatives) avoid them, which keeps determinization simple.
"""

from __future__ import annotations

from repro.errors import SchemaError


class NFA:
    """An epsilon-free NFA with a set of initial states.

    Attributes:
        states: frozenset of states.
        alphabet: frozenset of symbols.
        transitions: mapping ``(state, symbol) -> frozenset(states)``;
            missing keys mean no transition.
        initial: frozenset of initial states.
        accepting: frozenset of accepting states.
    """

    __slots__ = ("states", "alphabet", "transitions", "initial", "accepting")

    def __init__(self, states, alphabet, transitions, initial, accepting):
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.transitions = {
            key: frozenset(value) for key, value in transitions.items()
        }
        self.initial = frozenset(initial)
        self.accepting = frozenset(accepting)
        self._check()

    def _check(self):
        if not self.initial <= self.states:
            raise SchemaError("initial states must be states")
        if not self.accepting <= self.states:
            raise SchemaError("accepting states must be states")
        for (source, symbol), targets in self.transitions.items():
            if source not in self.states:
                raise SchemaError(f"transition from unknown state {source!r}")
            if symbol not in self.alphabet:
                raise SchemaError(f"transition on unknown symbol {symbol!r}")
            if not targets <= self.states:
                raise SchemaError(f"transition to unknown state from {source!r}")

    def __len__(self):
        """The paper's size measure: the number of states."""
        return len(self.states)

    def successors(self, state, symbol):
        """States reachable from ``state`` on ``symbol``."""
        return self.transitions.get((state, symbol), frozenset())

    def step(self, current, symbol):
        """Advance a *set* of states by one symbol."""
        out = set()
        for state in current:
            out |= self.successors(state, symbol)
        return frozenset(out)

    def run(self, word):
        """The set of states reachable after reading ``word`` (``A(w)``)."""
        current = self.initial
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return current
        return current

    def accepts(self, word):
        """Return True iff the NFA accepts ``word``."""
        return bool(self.run(word) & self.accepting)

    def reachable_states(self):
        """States reachable from the initial set."""
        seen = set(self.initial)
        worklist = list(self.initial)
        while worklist:
            state = worklist.pop()
            for symbol in self.alphabet:
                for target in self.successors(state, symbol):
                    if target not in seen:
                        seen.add(target)
                        worklist.append(target)
        return frozenset(seen)

    def trim(self):
        """Restrict to states that are reachable and co-reachable."""
        reachable = self.reachable_states()
        # Co-reachable: backwards BFS from accepting states.
        predecessors = {}
        for (source, symbol), targets in self.transitions.items():
            for target in targets:
                predecessors.setdefault(target, set()).add(source)
        co_reachable = set(self.accepting & reachable)
        worklist = list(co_reachable)
        while worklist:
            state = worklist.pop()
            for source in predecessors.get(state, ()):
                if source in reachable and source not in co_reachable:
                    co_reachable.add(source)
                    worklist.append(source)
        keep = reachable & co_reachable
        transitions = {
            (source, symbol): targets & keep
            for (source, symbol), targets in self.transitions.items()
            if source in keep and targets & keep
        }
        return NFA(
            states=keep,
            alphabet=self.alphabet,
            transitions=transitions,
            initial=self.initial & keep,
            accepting=self.accepting & keep,
        )

    def reverse(self):
        """The reversal NFA (accepts the mirror language)."""
        transitions = {}
        for (source, symbol), targets in self.transitions.items():
            for target in targets:
                transitions.setdefault((target, symbol), set()).add(source)
        return NFA(
            states=self.states,
            alphabet=self.alphabet,
            transitions=transitions,
            initial=self.accepting,
            accepting=self.initial,
        )

    def renumbered(self):
        """An isomorphic NFA over ``0..n-1`` (stable BFS numbering)."""
        mapping = {}
        order = []
        worklist = sorted(self.initial, key=repr)
        for state in worklist:
            mapping[state] = len(mapping)
            order.append(state)
        index = 0
        while index < len(order):
            state = order[index]
            index += 1
            for symbol in sorted(self.alphabet):
                for target in sorted(self.successors(state, symbol), key=repr):
                    if target not in mapping:
                        mapping[target] = len(mapping)
                        order.append(target)
        for state in sorted(self.states - set(mapping), key=repr):
            mapping[state] = len(mapping)
        transitions = {
            (mapping[source], symbol): frozenset(mapping[t] for t in targets)
            for (source, symbol), targets in self.transitions.items()
        }
        return NFA(
            states=frozenset(mapping.values()),
            alphabet=self.alphabet,
            transitions=transitions,
            initial=frozenset(mapping[s] for s in self.initial),
            accepting=frozenset(mapping[s] for s in self.accepting),
        )
