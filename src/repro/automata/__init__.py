"""Finite-automata substrate (NFA/DFA, determinization, minimization,
products, state elimination, and Boolean language operations)."""

from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.minimize import minimal_complete_dfa_for_regex, minimize
from repro.automata.nfa import NFA
from repro.automata.operations import (
    canonical_dfa,
    complement,
    counterexample,
    difference,
    equivalent,
    intersection,
    is_empty,
    is_subset,
    isomorphic,
    some_word,
    union_dfa,
)
from repro.automata.product import pair_product, product_dfa
from repro.automata.state_elimination import dfa_to_regex, nfa_to_regex

__all__ = [
    "DFA",
    "NFA",
    "canonical_dfa",
    "complement",
    "counterexample",
    "determinize",
    "dfa_to_regex",
    "difference",
    "equivalent",
    "intersection",
    "is_empty",
    "is_subset",
    "isomorphic",
    "minimal_complete_dfa_for_regex",
    "minimize",
    "nfa_to_regex",
    "pair_product",
    "product_dfa",
    "some_word",
    "union_dfa",
]
