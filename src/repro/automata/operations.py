"""Language-level operations and decision procedures on automata.

These operate on *ancestor languages* only — the paper is explicit (Section
4.1) that content models must never be combined with Boolean operations,
because deterministic expressions are not closed under them.  Ancestor
languages have no determinism obligation, so the full Boolean toolkit is
available here.
"""

from __future__ import annotations

from collections import deque

from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.minimize import minimize
from repro.automata.product import pair_product


def _as_dfa(automaton):
    if isinstance(automaton, DFA):
        return automaton
    return determinize(automaton)


def intersection(left, right):
    """DFA for ``L(left) ∩ L(right)``."""
    return pair_product(_as_dfa(left), _as_dfa(right), lambda a, b: a and b)


def union_dfa(left, right):
    """DFA for ``L(left) ∪ L(right)``."""
    return pair_product(_as_dfa(left), _as_dfa(right), lambda a, b: a or b)


def difference(left, right):
    """DFA for ``L(left) \\ L(right)``."""
    return pair_product(_as_dfa(left), _as_dfa(right), lambda a, b: a and not b)


def complement(automaton, alphabet=None):
    """DFA for the complement of the language over ``alphabet``."""
    dfa = _as_dfa(automaton)
    if alphabet is not None:
        dfa = DFA(
            dfa.states,
            frozenset(alphabet) | dfa.alphabet,
            dfa.transitions,
            dfa.initial,
            dfa.accepting,
        )
    dfa = dfa.completed()
    return DFA(
        dfa.states,
        dfa.alphabet,
        dfa.transitions,
        dfa.initial,
        dfa.states - dfa.accepting,
    )


def is_empty(automaton):
    """True iff the automaton accepts no word."""
    dfa = _as_dfa(automaton)
    return dfa.accepts_nothing()


def some_word(automaton):
    """A shortest accepted word, or ``None`` if the language is empty."""
    dfa = _as_dfa(automaton)
    parents = {dfa.initial: None}
    queue = deque([dfa.initial])
    while queue:
        state = queue.popleft()
        if state in dfa.accepting:
            word = []
            current = state
            while parents[current] is not None:
                previous, symbol = parents[current]
                word.append(symbol)
                current = previous
            word.reverse()
            return word
        for symbol in sorted(dfa.alphabet):
            target = dfa.transitions.get((state, symbol))
            if target is not None and target not in parents:
                parents[target] = (state, symbol)
                queue.append(target)
    return None


def is_subset(left, right):
    """True iff ``L(left) ⊆ L(right)``."""
    return is_empty(difference(left, right))


def equivalent(left, right):
    """True iff the two automata accept the same language."""
    return is_subset(left, right) and is_subset(right, left)


def counterexample(left, right):
    """A word in the symmetric difference, or ``None`` when equivalent."""
    in_left_only = some_word(difference(left, right))
    if in_left_only is not None:
        return in_left_only
    return some_word(difference(right, left))


def canonical_dfa(automaton):
    """The canonical minimal complete DFA (unique up to renumbering)."""
    return minimize(_as_dfa(automaton))


def isomorphic(left, right):
    """True iff two DFAs are isomorphic (same structure after renumbering).

    Both inputs should already be minimal and complete; the check walks both
    in lockstep from the initial states.
    """
    left = left.renumbered()
    right = right.renumbered()
    if len(left) != len(right) or left.alphabet != right.alphabet:
        return False
    mapping = {left.initial: right.initial}
    queue = deque([left.initial])
    while queue:
        state = queue.popleft()
        image = mapping[state]
        if (state in left.accepting) != (image in right.accepting):
            return False
        for symbol in left.alphabet:
            left_target = left.transitions.get((state, symbol))
            right_target = right.transitions.get((image, symbol))
            if (left_target is None) != (right_target is None):
                return False
            if left_target is None:
                continue
            known = mapping.get(left_target)
            if known is None:
                mapping[left_target] = right_target
                queue.append(left_target)
            elif known != right_target:
                return False
    return len(mapping) == len(left.states)
