"""DFA minimization (Hopcroft's partition-refinement algorithm).

:func:`minimize` returns the canonical minimal *complete* DFA; the minimal
DFA of a regular language is unique up to isomorphism, which the property
tests exploit (two equivalent regexes minimize to isomorphic DFAs).

:func:`minimal_complete_dfa_for_regex` is the exact building block that
Algorithm 3 (line 2) asks for: "minimal complete DFA for L(r_i)".
"""

from __future__ import annotations

from repro.automata.dfa import DFA


def minimize(dfa):
    """Return the minimal complete DFA equivalent to ``dfa``.

    The input is first restricted to reachable states and completed; then
    Hopcroft refinement merges equivalent states.
    """
    dfa = dfa.trimmed().completed()
    states = sorted(dfa.states, key=repr)
    alphabet = sorted(dfa.alphabet)

    accepting = dfa.accepting & dfa.states
    non_accepting = dfa.states - accepting

    # Hopcroft's algorithm over blocks represented as frozensets.
    partition = set()
    if accepting:
        partition.add(frozenset(accepting))
    if non_accepting:
        partition.add(frozenset(non_accepting))
    worklist = set(partition)

    # Precompute inverse transitions: symbol -> target -> {sources}.
    inverse = {symbol: {} for symbol in alphabet}
    for (source, symbol), target in dfa.transitions.items():
        inverse[symbol].setdefault(target, set()).add(source)

    while worklist:
        splitter = worklist.pop()
        for symbol in alphabet:
            # X = states with a transition on `symbol` into the splitter.
            into = set()
            table = inverse[symbol]
            for target in splitter:
                into |= table.get(target, set())
            if not into:
                continue
            for block in list(partition):
                intersection = block & into
                difference = block - into
                if not intersection or not difference:
                    continue
                partition.remove(block)
                part_a = frozenset(intersection)
                part_b = frozenset(difference)
                partition.add(part_a)
                partition.add(part_b)
                if block in worklist:
                    worklist.remove(block)
                    worklist.add(part_a)
                    worklist.add(part_b)
                else:
                    worklist.add(min(part_a, part_b, key=len))
    del states

    block_of = {}
    for block in partition:
        for state in block:
            block_of[state] = block

    # Build the quotient automaton with stable integer names.
    block_ids = {}
    order = []

    def block_id(block):
        identifier = block_ids.get(block)
        if identifier is None:
            identifier = len(order)
            block_ids[block] = identifier
            order.append(block)
        return identifier

    initial = block_id(block_of[dfa.initial])
    transitions = {}
    index = 0
    while index < len(order):
        block = order[index]
        index += 1
        representative = next(iter(block))
        for symbol in alphabet:
            target = dfa.transitions.get((representative, symbol))
            if target is None:
                continue
            transitions[(block_ids[block], symbol)] = block_id(block_of[target])
    accepting_ids = frozenset(
        block_ids[block] for block in order if block & dfa.accepting
    )
    return DFA(
        states=frozenset(range(len(order))),
        alphabet=dfa.alphabet,
        transitions=transitions,
        initial=initial,
        accepting=accepting_ids,
    ).renumbered()


def minimal_complete_dfa_for_regex(regex, alphabet):
    """The minimal complete DFA for ``L(regex)`` over ``alphabet``.

    This is the exact primitive of Algorithm 3, line 2.  The regex is
    compiled by the derivative construction (already deterministic and
    complete over the alphabet) and then minimized.
    """
    from repro.regex.derivatives import to_dfa

    return minimize(to_dfa(regex, alphabet))
