"""The Theorem 8 family: XSDs whose smallest equivalent BXSD is exponential.

The construction extends Ehrenfeucht & Zeiger's language ``Z_n`` over the
alphabet ``Sigma_n = {a_ij | i, j in 1..n}``: a word is in ``Z_n`` iff the
*target* of each symbol equals the *source* of the next.  ``Z_n`` has a
DFA with ``O(n^2)`` states but no regular expression smaller than
``2^(n-1)``.

The paper's DFA-based XSD ``X_n = (A_n, S_n, lambda_n)``:

* states ``q_1..q_n`` (inside ``Z_n``, remembering the last target) and
  ``q'_1..q'_n`` (an error with *error index* ``l`` occurred);
* ``delta(q_i, a_jl) = q_l`` if ``i = j`` else ``q'_i`` — wait, the paper
  records the error index of the *violated* target: reading ``a_jl`` in
  state ``q_i`` with ``i != j`` moves to ``q'_i`` (the paper's choice; the
  error index is the target of the last correct symbol);
* error states absorb: ``delta(q'_i, a_jl) = q'_i``;
* ``lambda(q_i) = (eps + Sigma)`` and
  ``lambda(q'_l) = (eps + Sigma + a_ll a_ll)`` — only below an error with
  index ``l`` may binary branching ``a_ll a_ll`` occur.

Every document is a path with at most one binary branch, whose branch
symbol reveals the error index — which forces any equivalent BXSD to
carry expensive expressions.
"""

from __future__ import annotations

from repro.regex.ast import EPSILON, alternation, concat, optional, sym, union
from repro.xsd.content import ContentModel
from repro.xsd.dfa_based import DFABasedXSD


def sigma_n(n):
    """The alphabet ``Sigma_n = {a_ij}`` as a sorted list of names."""
    return [f"a{i}_{j}" for i in range(1, n + 1) for j in range(1, n + 1)]


def symbol_name(i, j):
    """The name of ``a_ij``."""
    return f"a{i}_{j}"


def split_symbol(name):
    """The ``(source, target)`` indices of a symbol name."""
    body = name[1:]
    source, target = body.split("_")
    return int(source), int(target)


def zn_contains(word):
    """Membership in ``Z_n``: adjacent symbols must chain target=source."""
    for left, right in zip(word, word[1:]):
        if split_symbol(left)[1] != split_symbol(right)[0]:
            return False
    return True


def zn_dfa(n):
    """The ``O(n)``-state DFA for ``Z_n`` (plus error states by index).

    Returns a :class:`repro.automata.dfa.DFA` accepting exactly ``Z_n``
    (all chained words, including the empty word).
    """
    from repro.automata.dfa import DFA

    alphabet = frozenset(sigma_n(n))
    states = {"start"} | {f"q{i}" for i in range(1, n + 1)} | {"dead"}
    transitions = {}
    for name in alphabet:
        source, target = split_symbol(name)
        transitions[("start", name)] = f"q{target}"
        transitions[("dead", name)] = "dead"
        for i in range(1, n + 1):
            transitions[(f"q{i}", name)] = (
                f"q{target}" if i == source else "dead"
            )
    return DFA(
        states=states,
        alphabet=alphabet,
        transitions=transitions,
        initial="start",
        accepting=frozenset(states) - {"dead"},
    )


def theorem8_xsd(n):
    """The DFA-based XSD ``X_n`` of Theorem 8 (size ``O(n^2)``).

    Returns:
        A :class:`~repro.xsd.dfa_based.DFABasedXSD` over ``Sigma_n``.
    """
    alphabet = sigma_n(n)
    sigma = frozenset(alphabet)
    initial = "q0"
    states = {initial}
    transitions = {}
    assign = {}

    plain = [f"q{i}" for i in range(1, n + 1)]
    error = [f"e{i}" for i in range(1, n + 1)]
    states.update(plain)
    states.update(error)

    any_one = alternation(alphabet)
    for i in range(1, n + 1):
        assign[f"q{i}"] = ContentModel(optional(any_one))
        # lambda(e_i) = eps + Sigma + a_ii a_ii, written deterministically:
        # the two competing occurrences of a_ii are factored into
        # a_ii (a_ii)?.
        others = alternation(
            [name for name in alphabet if name != symbol_name(i, i)]
        )
        loop = symbol_name(i, i)
        branching = concat(sym(loop), optional(sym(loop)))
        assign[f"e{i}"] = ContentModel(optional(union(others, branching)))

    for name in alphabet:
        source, target = split_symbol(name)
        transitions[(initial, name)] = f"q{target}"
        for i in range(1, n + 1):
            if i == source:
                transitions[(f"q{i}", name)] = f"q{target}"
            else:
                # An error occurred; the error index is the violated
                # target i (the last correct symbol pointed at i).
                transitions[(f"q{i}", name)] = f"e{i}"
            transitions[(f"e{i}", name)] = f"e{i}"

    return DFABasedXSD(
        states=states,
        alphabet=sigma,
        transitions=transitions,
        initial=initial,
        start=sigma,
        assign=assign,
    )


def theorem8_size(n):
    """The input size measure reported for ``X_n`` (states + alphabet)."""
    schema = theorem8_xsd(n)
    return schema.total_size
