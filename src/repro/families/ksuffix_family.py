"""Parameterized k-suffix schema families (the "practical" fragment).

These generators produce schemas whose content models depend on the last
``k`` labels only — the shape the study of Section 4.4 found in >98% of
real XSDs.  They drive the E9 benchmarks (polynomial translations and the
crossover against the generic algorithms).
"""

from __future__ import annotations

from repro.bonxai.bxsd import BXSD, Rule
from repro.regex.ast import concat, star, sym, union, universal
from repro.xsd.content import ContentModel


def layered_ksuffix_bxsd(width, k, fanout=2):
    """A k-suffix BXSD with ``width`` element names per layer.

    Element names are ``n0..n(width-1)``; the rule for suffix
    ``w = n_i1 / ... / n_ik`` allows as children the ``fanout`` names
    following ``i_k`` cyclically — so the content depends on the whole
    suffix, making the schema *exactly* k-suffix (no shorter suffix
    determines it, because the rule body mixes in a parity of the suffix
    indices).
    """
    names = [f"n{i}" for i in range(width)]
    ename = frozenset(names)
    universe = universal(ename)

    rules = []
    # Base rules: any element may have any children (lowest priority).
    # One rule per name keeps every left-hand side a Definition-11 suffix
    # language (a union of names is not).
    anything = ContentModel(star(union(*(sym(n) for n in names))))
    for name in names:
        rules.append(Rule(concat(universe, sym(name)), anything))
    # One rule per suffix word of length k, on a sparse diagonal (to keep
    # rule counts linear in width rather than width**k).
    for start_index in range(width):
        word = [names[(start_index + offset) % width] for offset in range(k)]
        shift = (start_index + sum(range(k))) % width
        allowed = [names[(shift + j) % width] for j in range(fanout)]
        pattern = concat(universe, *(sym(name) for name in word))
        content = star(union(*(sym(name) for name in allowed)))
        rules.append(Rule(pattern, ContentModel(content)))
    return BXSD(ename=ename, start=frozenset(names[:1]), rules=rules)


def dtd_like_bxsd(width, children_per_rule=3):
    """A 1-suffix (DTD-equivalent) BXSD: one rule per element name."""
    names = [f"n{i}" for i in range(width)]
    ename = frozenset(names)
    universe = universal(ename)
    rules = []
    for index, name in enumerate(names):
        allowed = [
            names[(index + j + 1) % width] for j in range(children_per_rule)
        ]
        rules.append(
            Rule(
                concat(universe, sym(name)),
                ContentModel(star(union(*(sym(n) for n in allowed)))),
            )
        )
    return BXSD(ename=ename, start=frozenset(names[:1]), rules=rules)


def chain_xsd(depth, alphabet_size=3):
    """A depth-bounded XSD whose DFA is a chain (k-suffix only at k=depth).

    Used to probe detection: the minimal k grows with the chain length.
    """
    from repro.xsd.dfa_based import DFABasedXSD
    from repro.regex.ast import EPSILON, optional

    names = [f"c{i}" for i in range(alphabet_size)]
    ename = frozenset(names)
    states = {"q0"} | {f"s{i}" for i in range(depth + 1)}
    transitions = {}
    assign = {}
    first = names[0]
    for i in range(depth + 1):
        if i < depth:
            assign[f"s{i}"] = ContentModel(optional(sym(first)))
            transitions[(f"s{i}", first)] = f"s{i + 1}"
        else:
            assign[f"s{i}"] = ContentModel(EPSILON)
    transitions[("q0", first)] = "s0"
    return DFABasedXSD(
        states=states,
        alphabet=ename,
        transitions=transitions,
        initial="q0",
        start=frozenset({first}),
        assign=assign,
    )
