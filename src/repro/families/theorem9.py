"""The Theorem 9 family: BXSDs whose smallest equivalent XSD is exponential.

``B_n`` is defined over ``EName_n = {a, a_1..a_n, b_1..b_n}`` with start
elements ``{a_1..a_n}`` and rules (in priority order)::

    //a                  -> eps
    //(b_1 + ... + b_n)  -> eps
    //(a_1 + ... + a_n)  -> (a + a_1 + ... + a_n)
    //a_1 //a_1 //a      -> b_1
    ...
    //a_n //a_n //a      -> b_n

Documents are unary trees; an ``a`` node whose ancestor path contains some
``a_j`` twice gets a ``b_j`` child for the *largest* such ``j`` (priority),
otherwise it is a leaf.  Any equivalent XSD must track, in its types, the
largest doubled index and the set of once-seen larger indices — ``2^n``
types.
"""

from __future__ import annotations

from repro.bonxai.bxsd import BXSD, Rule
from repro.regex.ast import alternation, concat, sym, union, universal
from repro.xsd.content import ContentModel
from repro.regex.ast import EPSILON


def theorem9_ename(n):
    """``EName_n = {a} ∪ {a_i} ∪ {b_i}``."""
    names = ["a"]
    names += [f"a{i}" for i in range(1, n + 1)]
    names += [f"b{i}" for i in range(1, n + 1)]
    return names


def theorem9_bxsd(n):
    """The BXSD ``B_n`` of Theorem 9 (size ``O(n)`` rules)."""
    ename = frozenset(theorem9_ename(n))
    a_names = [f"a{i}" for i in range(1, n + 1)]
    b_names = [f"b{i}" for i in range(1, n + 1)]
    universe = universal(ename)

    rules = [
        # //a -> eps
        Rule(concat(universe, sym("a")), ContentModel(EPSILON)),
        # //(b_1 + ... + b_n) -> eps
        Rule(concat(universe, alternation(b_names)), ContentModel(EPSILON)),
        # //(a_1 + ... + a_n) -> (a + a_1 + ... + a_n)
        Rule(
            concat(universe, alternation(a_names)),
            ContentModel(alternation(["a"] + a_names)),
        ),
    ]
    for i in range(1, n + 1):
        # //a_i //a_i //a -> b_i
        pattern = concat(
            universe, sym(f"a{i}"),
            universe, sym(f"a{i}"),
            universe, sym("a"),
        )
        rules.append(Rule(pattern, ContentModel(sym(f"b{i}"))))

    return BXSD(ename=ename, start=frozenset(a_names), rules=rules)


def expected_child_of_a(ancestor_path):
    """Reference semantics: the ``b_j`` child an ``a``-node must have.

    Returns the element name ``b_j`` for the largest ``j`` whose ``a_j``
    occurs at least twice on the path, or ``None`` when the ``a`` node
    must be a leaf.
    """
    best = None
    counts = {}
    for name in ancestor_path:
        counts[name] = counts.get(name, 0) + 1
    for name, count in counts.items():
        if name.startswith("a") and name != "a" and count >= 2:
            index = int(name[1:])
            if best is None or index > best:
                best = index
    return None if best is None else f"b{best}"
