"""Schema families: worst-case blow-ups (Theorems 8, 9) and k-suffix
fragment generators (Section 4.4)."""

from repro.families.ehrenfeucht_zeiger import (
    sigma_n,
    split_symbol,
    symbol_name,
    theorem8_size,
    theorem8_xsd,
    zn_contains,
    zn_dfa,
)
from repro.families.ksuffix_family import (
    chain_xsd,
    dtd_like_bxsd,
    layered_ksuffix_bxsd,
)
from repro.families.theorem9 import (
    expected_child_of_a,
    theorem9_bxsd,
    theorem9_ename,
)

__all__ = [
    "chain_xsd",
    "dtd_like_bxsd",
    "expected_child_of_a",
    "layered_ksuffix_bxsd",
    "sigma_n",
    "split_symbol",
    "symbol_name",
    "theorem8_size",
    "theorem8_xsd",
    "theorem9_bxsd",
    "theorem9_ename",
    "zn_contains",
    "zn_dfa",
]
