"""Serializing formal XSDs to W3C ``.xsd`` syntax.

The emitted subset matches what the paper's Figure 3 uses: global element
declarations for the start elements, named complex types, particles built
from ``xs:sequence`` / ``xs:choice`` / ``xs:all`` with ``minOccurs`` /
``maxOccurs``, the ``mixed`` attribute, and attribute declarations.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.regex.ast import (
    Concat,
    Counter,
    EmptySet,
    Epsilon,
    Interleave,
    Optional,
    Plus,
    Star,
    Symbol,
    UNBOUNDED,
    Union,
)
from repro.xmlmodel.tree import XMLDocument, XMLElement
from repro.xmlmodel.writer import write_document
from repro.xsd.typednames import split_typed_name

XS = "xs"
DEFAULT_SIMPLE_TYPE = "xs:string"


def xsd_to_xml(xsd, target_namespace=None):
    """Build the ``xs:schema`` document tree for a formal XSD."""
    schema = XMLElement(
        f"{XS}:schema",
        attributes={
            f"xmlns:{XS}": "http://www.w3.org/2001/XMLSchema",
            "elementFormDefault": "qualified",
        },
    )
    if target_namespace:
        schema.attributes["targetNamespace"] = target_namespace
        schema.attributes["xmlns"] = target_namespace

    for typed in sorted(xsd.start):
        element_name, type_name = split_typed_name(typed)
        schema.append(
            XMLElement(
                f"{XS}:element",
                attributes={"name": element_name, "type": type_name},
            )
        )

    for type_name in sorted(xsd.types, key=str):
        schema.append(_complex_type(xsd.rho[type_name], type_name))
    return XMLDocument(schema)


def write_xsd(xsd, target_namespace=None):
    """Serialize a formal XSD to ``.xsd`` text."""
    return write_document(xsd_to_xml(xsd, target_namespace=target_namespace))


def _complex_type(model, type_name=None):
    node = XMLElement(f"{XS}:complexType")
    if type_name is not None:
        node.attributes["name"] = str(type_name)
    if model.mixed:
        node.attributes["mixed"] = "true"
    if not isinstance(model.regex, Epsilon):
        particle = _particle(model.regex)
        if particle.name == f"{XS}:element":
            # A complexType's content must be a model group, not a bare
            # element declaration.
            wrapper = XMLElement(f"{XS}:sequence")
            wrapper.append(particle)
            particle = wrapper
        node.append(particle)
    for use in model.attributes:
        attribute = XMLElement(
            f"{XS}:attribute",
            attributes={
                "name": use.name,
                "type": use.type_name or DEFAULT_SIMPLE_TYPE,
            },
        )
        attribute.attributes["use"] = "required" if use.required else "optional"
        node.append(attribute)
    return node


def _particle(regex, min_occurs=1, max_occurs=1):
    """Render ``regex`` as one XSD particle carrying occurrence bounds."""
    if isinstance(regex, EmptySet):
        raise TranslationError(
            "the empty language is not expressible as an XSD particle"
        )
    if isinstance(regex, Epsilon):
        return _with_occurs(XMLElement(f"{XS}:sequence"), min_occurs, max_occurs)
    if isinstance(regex, Symbol):
        element_name, type_name = split_typed_name(regex.name)
        node = XMLElement(
            f"{XS}:element",
            attributes={"name": element_name, "type": type_name},
        )
        return _with_occurs(node, min_occurs, max_occurs)
    if isinstance(regex, Concat):
        node = XMLElement(f"{XS}:sequence")
        for child in regex.children:
            node.append(_particle(child))
        return _with_occurs(node, min_occurs, max_occurs)
    if isinstance(regex, Union):
        node = XMLElement(f"{XS}:choice")
        for child in regex.children:
            node.append(_particle(child))
        return _with_occurs(node, min_occurs, max_occurs)
    if isinstance(regex, Interleave):
        node = XMLElement(f"{XS}:all")
        for child in regex.children:
            node.append(_particle(child))
        return _with_occurs(node, min_occurs, max_occurs)
    if isinstance(regex, Star):
        return _nested_occurs(regex.child, 0, "unbounded", min_occurs,
                              max_occurs)
    if isinstance(regex, Plus):
        return _nested_occurs(regex.child, 1, "unbounded", min_occurs,
                              max_occurs)
    if isinstance(regex, Optional):
        return _nested_occurs(regex.child, 0, 1, min_occurs, max_occurs)
    if isinstance(regex, Counter):
        high = "unbounded" if regex.high is UNBOUNDED else regex.high
        return _nested_occurs(regex.child, regex.low, high, min_occurs,
                              max_occurs)
    raise TranslationError(f"unknown regex node {regex!r}")


def _nested_occurs(child, low, high, outer_min, outer_max):
    if outer_min == 1 and outer_max == 1:
        return _particle(child, min_occurs=low, max_occurs=high)
    # An iterated iteration (e.g. (a?)* after partial normalization): wrap
    # the inner particle in an explicit sequence carrying the outer bounds.
    wrapper = XMLElement(f"{XS}:sequence")
    wrapper.append(_particle(child, min_occurs=low, max_occurs=high))
    return _with_occurs(wrapper, outer_min, outer_max)


def _with_occurs(node, min_occurs, max_occurs):
    if min_occurs != 1:
        node.attributes["minOccurs"] = str(min_occurs)
    if max_occurs != 1:
        node.attributes["maxOccurs"] = str(max_occurs)
    return node
