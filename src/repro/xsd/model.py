"""The formal XSD model (Definition 2 of the paper).

An XSchema Definition is ``X = (EName, Types, rho, T0)``: ``rho`` maps each
complex type to a content model over *typed element names* ``a[t]``, and
``T0`` is the set of typed start elements.  Well-formedness enforces:

* **EDC** (Element Declarations Consistent): no content model (and not
  ``T0``) mentions the same element name with two different types.
* **UPA** (Unique Particle Attribution): every content model is a
  deterministic (one-unambiguous) regular expression.
"""

from __future__ import annotations

from repro.errors import EDCViolation, SchemaError
from repro.regex.determinism import check_deterministic
from repro.xsd.content import ContentModel, as_content_model
from repro.xsd.typednames import TypedName, split_typed_name


class XSD:
    """A formal XSD (Definition 2).

    Attributes:
        ename: frozenset of element names.
        types: frozenset of complex type names.
        rho: dict type name -> :class:`ContentModel` whose regex is over
            typed element names ``a[t]``.
        start: frozenset of :class:`TypedName` start elements (``T0``).
    """

    # "__weakref__" lets the schema cache's identity fast path hold a
    # weak reference (repro.engine.cache.SchemaCache._remember).
    __slots__ = ("ename", "types", "rho", "start", "__weakref__")

    def __init__(self, ename, types, rho, start, check=True):
        self.ename = frozenset(ename)
        self.types = frozenset(types)
        self.rho = {
            type_name: as_content_model(model)
            for type_name, model in rho.items()
        }
        self.start = frozenset(
            name if isinstance(name, TypedName) else TypedName(*name)
            for name in start
        )
        if check:
            self.check_well_formed()

    # -- well-formedness ---------------------------------------------------
    def check_well_formed(self):
        """Raise :class:`SchemaError` unless this is a valid Definition-2 XSD."""
        for type_name in self.types:
            if type_name not in self.rho:
                raise SchemaError(f"type {type_name!r} has no content model")
        for type_name in self.rho:
            if type_name not in self.types:
                raise SchemaError(
                    f"content model for undeclared type {type_name!r}"
                )
        self._check_symbols()
        self.check_edc()
        self.check_upa()

    def _check_symbols(self):
        for type_name, model in self.rho.items():
            for symbol in model.element_names():
                element_name, target_type = split_typed_name(symbol)
                if element_name not in self.ename:
                    raise SchemaError(
                        f"type {type_name!r} references unknown element "
                        f"{element_name!r}"
                    )
                if target_type not in self.types:
                    raise SchemaError(
                        f"type {type_name!r} references unknown type "
                        f"{target_type!r}"
                    )
        for typed in self.start:
            element_name, target_type = split_typed_name(typed)
            if element_name not in self.ename:
                raise SchemaError(f"unknown start element {element_name!r}")
            if target_type not in self.types:
                raise SchemaError(f"unknown start type {target_type!r}")

    def check_edc(self):
        """Raise :class:`EDCViolation` on Element-Declarations-Consistent breaches."""
        for type_name, model in self.rho.items():
            _check_consistent(
                model.element_names(),
                f"content model of type {type_name!r}",
            )
        _check_consistent(self.start, "the start elements T0")

    def check_upa(self):
        """Raise :class:`NotDeterministicError` on UPA breaches.

        Thanks to EDC, determinism over typed names coincides with
        determinism over plain element names, so the check runs on the
        erased expression — the same expression the BonXai translation will
        carry verbatim.
        """
        for type_name, model in self.rho.items():
            erased = model.map_symbols(lambda s: split_typed_name(s)[0])
            check_deterministic(erased.regex)

    # -- accessors ----------------------------------------------------------
    def content_model(self, type_name):
        """The :class:`ContentModel` of ``type_name``."""
        return self.rho[type_name]

    def child_type(self, type_name, element_name):
        """The unique type of ``element_name`` inside ``rho(type_name)``.

        Returns ``None`` when the element does not occur there.  Uniqueness
        is EDC.
        """
        for symbol in self.rho[type_name].element_names():
            name, target_type = split_typed_name(symbol)
            if name == element_name:
                return target_type
        return None

    def start_type(self, element_name):
        """The start type of a root element name, or ``None``."""
        for typed in self.start:
            name, target_type = split_typed_name(typed)
            if name == element_name:
                return target_type
        return None

    @property
    def size(self):
        """Paper size measure: number of types plus content-model sizes."""
        return len(self.types) + sum(model.size for model in self.rho.values())

    def reachable_types(self):
        """Types reachable from the start elements."""
        seen = set()
        worklist = []
        for typed in self.start:
            __, type_name = split_typed_name(typed)
            if type_name not in seen:
                seen.add(type_name)
                worklist.append(type_name)
        while worklist:
            type_name = worklist.pop()
            for symbol in self.rho[type_name].element_names():
                __, target = split_typed_name(symbol)
                if target not in seen:
                    seen.add(target)
                    worklist.append(target)
        return frozenset(seen)

    def trimmed(self):
        """An equivalent XSD restricted to reachable types."""
        keep = self.reachable_types()
        return XSD(
            ename=self.ename,
            types=keep,
            rho={t: self.rho[t] for t in keep},
            start=self.start,
            check=False,
        )

    def __repr__(self):
        return (
            f"<XSD types={len(self.types)} elements={len(self.ename)} "
            f"size={self.size}>"
        )


def _check_consistent(symbols, where):
    seen = {}
    for symbol in symbols:
        element_name, type_name = split_typed_name(symbol)
        previous = seen.get(element_name)
        if previous is not None and previous != type_name:
            raise EDCViolation(
                f"element {element_name!r} occurs with types {previous!r} "
                f"and {type_name!r} in {where}"
            )
        seen[element_name] = type_name
