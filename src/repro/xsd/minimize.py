"""Minimization of DFA-based XSDs (and thereby XSDs), after [22].

Martens & Niehren show XSDs can be minimized efficiently by merging
equivalent types; the content-model *expressions* are left untouched (there
is no known efficient minimization of deterministic regular expressions —
the paper remarks on this after Lemma 7).

The algorithm is Moore-style partition refinement on the states of the
DFA-based XSD: the initial partition groups states whose content models
define the same word language over element names (decided via canonical
DFAs), with mixedness and attribute uses as part of the signature; blocks
are then split until transitions respect the partition.
"""

from __future__ import annotations

from repro.automata.minimize import minimize as minimize_dfa
from repro.automata.operations import isomorphic
from repro.regex.derivatives import to_dfa
from repro.xsd.dfa_based import DFABasedXSD


def minimize_dfa_based(schema):
    """An equivalent DFA-based XSD with a minimal number of types/states.

    The input is first trimmed to usefully-reachable states; then states
    with indistinguishable behaviour are merged.  For each merged block the
    content model of its smallest representative is kept verbatim (never
    rebuilt).
    """
    schema = schema.trimmed()
    states = sorted(
        (state for state in schema.states if state != schema.initial),
        key=repr,
    )

    # Initial partition: by content-language signature.
    signature_groups = {}
    canonical = {}
    for state in states:
        model = schema.assign[state]
        canonical[state] = minimize_dfa(
            to_dfa(model.regex, alphabet=schema.alphabet)
        )
        placed = False
        key = (model.mixed, frozenset(model.attributes))
        bucket = signature_groups.setdefault(key, [])
        for group in bucket:
            if isomorphic(canonical[state], canonical[group[0]]):
                group.append(state)
                placed = True
                break
        if not placed:
            bucket.append([state])

    block_of = {}
    blocks = []
    for bucket in signature_groups.values():
        for group in bucket:
            index = len(blocks)
            blocks.append(list(group))
            for state in group:
                block_of[state] = index

    # Moore refinement: split blocks whose members disagree on the block of
    # some successor (only letters occurring in the content model matter,
    # and those letters are identical within a block by construction).
    changed = True
    while changed:
        changed = False
        new_blocks = []
        new_block_of = {}
        for block in blocks:
            groups = {}
            for state in block:
                letters = sorted(schema.assign[state].element_names())
                signature = tuple(
                    block_of[schema.transitions[(state, letter)]]
                    for letter in letters
                )
                groups.setdefault(signature, []).append(state)
            if len(groups) > 1:
                changed = True
            for group in groups.values():
                index = len(new_blocks)
                new_blocks.append(group)
                for state in group:
                    new_block_of[state] = index
        blocks = new_blocks
        block_of = new_block_of

    # Build the quotient schema.
    representative = {index: min(block, key=repr)
                      for index, block in enumerate(blocks)}
    initial = "__q0__"
    transitions = {}
    assign = {}
    for index, block in enumerate(blocks):
        source = representative[index]
        state_name = f"B{index}"
        assign[state_name] = schema.assign[source]
        for letter in schema.assign[source].element_names():
            target = schema.transitions[(source, letter)]
            transitions[(state_name, letter)] = f"B{block_of[target]}"
    for letter in schema.start:
        target = schema.transitions.get((schema.initial, letter))
        if target is not None:
            transitions[(initial, letter)] = f"B{block_of[target]}"
    return DFABasedXSD(
        states=frozenset(assign) | {initial},
        alphabet=schema.alphabet,
        transitions=transitions,
        initial=initial,
        start=schema.start,
        assign=assign,
    )


def minimize_xsd(xsd):
    """An equivalent XSD with a minimal number of types.

    Round-trips through the DFA-based representation (Algorithms 1 and 4
    are linear, Lemmas 4 and 7).
    """
    from repro.translation.dfa_to_xsd import dfa_based_to_xsd
    from repro.translation.xsd_to_dfa import xsd_to_dfa_based

    return dfa_based_to_xsd(minimize_dfa_based(xsd_to_dfa_based(xsd)))
