"""Equivalence of schemas at the document-language level.

Two schemas are equivalent iff they accept exactly the same set of XML
documents.  For DFA-based XSDs (the pivot representation — everything else
is translated into it first), equivalence is decided by a synchronized
walk over state pairs reachable through *valid* documents:

1. compute the *productive* states of each schema (states below which at
   least one finite valid subtree exists) — a fixpoint, because a content
   model only helps if the letters it emits lead to productive states;
2. the two root-name sets (restricted to productive states) must agree;
3. for every synchronized pair of states, the content languages restricted
   to productive letters must be equal as word languages; recursion follows
   the letters that actually occur in those restricted languages.

This is sound and complete for single-type tree grammars (which is what
XSDs are [Martens et al. 2006]).
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.operations import counterexample as word_counterexample
from repro.automata.operations import equivalent as dfa_equivalent
from repro.regex.derivatives import to_dfa


def productive_states(schema):
    """The productive states of a DFA-based XSD and their ranks.

    Returns:
        dict state -> rank (the fixpoint round in which the state was
        proven productive; smaller rank = shallower minimal subtree).
        The initial state never appears (it types no node).
    """
    ranks = {}
    content_dfas = {}
    for state in schema.states:
        if state == schema.initial:
            continue
        model = schema.assign[state]
        content_dfas[state] = to_dfa(
            model.regex, alphabet=model.element_names()
        )

    round_number = 0
    changed = True
    while changed:
        changed = False
        round_number += 1
        newly_productive = []
        for state, content in content_dfas.items():
            if state in ranks:
                continue
            allowed = {
                name
                for name in content.alphabet
                if schema.transitions.get((state, name)) in ranks
            }
            if _has_word_over(content, allowed):
                newly_productive.append(state)
                changed = True
        for state in newly_productive:
            ranks[state] = round_number
    return ranks


def _has_word_over(content_dfa, allowed):
    """True iff the content DFA accepts some word using only ``allowed``."""
    seen = {content_dfa.initial}
    worklist = [content_dfa.initial]
    while worklist:
        state = worklist.pop()
        if state in content_dfa.accepting:
            return True
        for name in allowed:
            target = content_dfa.transitions.get((state, name))
            if target is not None and target not in seen:
                seen.add(target)
                worklist.append(target)
    return False


def restricted_content_dfa(schema, state, ranks, alphabet):
    """DFA of ``L(lambda(state))`` restricted to productive letters."""
    model = schema.assign[state]
    dfa = to_dfa(model.regex, alphabet=alphabet | model.element_names())
    productive_letters = {
        name
        for name in dfa.alphabet
        if schema.transitions.get((state, name)) in ranks
    }
    transitions = {
        (source, name): target
        for (source, name), target in dfa.transitions.items()
        if name in productive_letters
    }
    return DFA(
        states=dfa.states,
        alphabet=dfa.alphabet,
        transitions=transitions,
        initial=dfa.initial,
        accepting=dfa.accepting,
    )


def _useful_letters(dfa):
    """Letters occurring in at least one accepted word of ``dfa``."""
    trimmed = dfa.to_nfa().trim()
    return {symbol for (state, symbol) in trimmed.transitions}


def productive_roots(schema, ranks=None):
    """Root names that can actually head a valid document."""
    if ranks is None:
        ranks = productive_states(schema)
    return frozenset(
        name
        for name in schema.start
        if schema.transitions.get((schema.initial, name)) in ranks
    )


class Divergence:
    """One point where two schemas' document languages come apart.

    Attributes:
        kind: ``roots`` (allowed root-name sets differ) or ``content``
            (one synchronized element type's content languages differ).
        path: element names from the root down to the diverging node
            (empty for ``roots``).
        left_state / right_state: the two schemas' states at that node —
            the *element-type context* of the divergence (``None`` for
            ``roots``).
        left_content / right_content: the productive-letter-restricted
            content DFAs compared there (``None`` for ``roots``) — the
            diff layer builds separator certificates from these.
        word: a shortest child-word in exactly one content language
            (``None`` for ``roots``).
        detail: human-readable one-liner.
    """

    __slots__ = ("kind", "path", "left_state", "right_state",
                 "left_content", "right_content", "word", "detail")

    def __init__(self, kind, path, detail, left_state=None,
                 right_state=None, left_content=None, right_content=None,
                 word=None):
        self.kind = kind
        self.path = list(path)
        self.detail = detail
        self.left_state = left_state
        self.right_state = right_state
        self.left_content = left_content
        self.right_content = right_content
        self.word = word

    def __repr__(self):
        at = "/" + "/".join(self.path)
        return f"<Divergence {self.kind} at {at}: {self.detail}>"


def dfa_xsd_equivalent(left, right):
    """Decide document-language equivalence of two DFA-based XSDs."""
    return dfa_xsd_counterexample_pair(left, right) is None


def dfa_xsd_counterexample_pair(left, right):
    """A description of the first difference found, or ``None`` if equal.

    Returns ``(path, detail)`` where ``path`` is the list of element names
    from the root to the disagreeing node and ``detail`` a human-readable
    explanation (either differing root sets or a child-word in exactly one
    content language).  :func:`dfa_xsd_divergences` returns the same walk's
    findings with the element-type context attached — use it when the
    *type* (state pair) in which the languages diverge matters, or when
    more than the first divergence is wanted.
    """
    for divergence in dfa_xsd_divergences(left, right, limit=1):
        return divergence.path, divergence.detail
    return None


def dfa_xsd_divergences(left, right, limit=None):
    """Every synchronized element type whose content languages differ.

    Walks the two schemas' reachable state pairs exactly like
    :func:`dfa_xsd_counterexample_pair`, but instead of stopping at the
    first difference it records a :class:`Divergence` per diverging state
    pair (each pair reported once, at the first path reaching it) and
    keeps exploring the *shared* part of the tree — children whose
    labels occur in valid words on both sides.  Yields lazily, so
    ``limit=1`` costs the same as the counterexample walk.

    Args:
        limit: stop after this many divergences (``None`` = all).
    """
    count = 0
    left_ranks = productive_states(left)
    right_ranks = productive_states(right)
    left_roots = productive_roots(left, left_ranks)
    right_roots = productive_roots(right, right_ranks)
    if left_roots != right_roots:
        yield Divergence(
            "roots", [],
            f"root names differ: {sorted(left_roots)} vs "
            f"{sorted(right_roots)}",
        )
        count += 1
        if limit is not None and count >= limit:
            return

    alphabet = left.alphabet | right.alphabet
    seen = set()
    worklist = []
    for name in sorted(left_roots & right_roots):
        pair = (
            left.transitions[(left.initial, name)],
            right.transitions[(right.initial, name)],
        )
        if pair not in seen:
            seen.add(pair)
            worklist.append((pair, [name]))

    while worklist:
        (left_state, right_state), path = worklist.pop()
        left_content = restricted_content_dfa(
            left, left_state, left_ranks, alphabet
        )
        right_content = restricted_content_dfa(
            right, right_state, right_ranks, alphabet
        )
        if not dfa_equivalent(left_content, right_content):
            witness = word_counterexample(left_content, right_content)
            yield Divergence(
                "content", path,
                f"content languages differ at {'/'.join(path)}; "
                f"witness child-word: {witness}",
                left_state=left_state,
                right_state=right_state,
                left_content=left_content,
                right_content=right_content,
                word=witness,
            )
            count += 1
            if limit is not None and count >= limit:
                return
        # Recurse through the shared tree: labels occurring in valid
        # words on *both* sides (one-sided labels are already part of
        # this divergence; their subtrees exist on one side only).
        shared = _useful_letters(left_content) & _useful_letters(
            right_content
        )
        for name in sorted(shared):
            pair = (
                left.transitions[(left_state, name)],
                right.transitions[(right_state, name)],
            )
            if pair not in seen:
                seen.add(pair)
                worklist.append((pair, path + [name]))


def xsd_equivalent(left_xsd, right_xsd):
    """Equivalence of two formal XSDs (via the DFA-based pivot)."""
    from repro.translation.xsd_to_dfa import xsd_to_dfa_based

    return dfa_xsd_equivalent(
        xsd_to_dfa_based(left_xsd), xsd_to_dfa_based(right_xsd)
    )
