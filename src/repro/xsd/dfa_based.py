"""DFA-based XSDs (Definition 3) — the pivot representation.

A DFA-based XSD is ``(A, S, lambda)``: a DFA ``A`` over element names whose
initial state has no incoming transitions, a set ``S`` of allowed root
element names, and a map ``lambda`` assigning a content model to every
non-initial state.  A document satisfies it iff the root's label is in
``S`` and, for every node ``u``, the state ``A(anc-str(u))`` (when defined)
has a content model matching ``ch-str(u)``.

Both translation directions (Algorithms 1–4) pass through this class.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.xsd.content import ContentModel, as_content_model


class DFABasedXSD:
    """A DFA-based XSD with deterministic content models (Definition 3).

    Attributes:
        states: frozenset of states (including ``initial``).
        alphabet: frozenset of element names (EName).
        transitions: dict ``(state, name) -> state``.
        initial: the initial state ``q0`` (no content model, no incoming
            transitions).
        start: frozenset ``S`` of allowed root element names.
        assign: dict state -> :class:`ContentModel` (the paper's lambda),
            defined for every state except ``initial``.
    """

    __slots__ = ("states", "alphabet", "transitions", "initial", "start",
                 "assign")

    def __init__(self, states, alphabet, transitions, initial, start, assign,
                 check=True):
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.transitions = dict(transitions)
        self.initial = initial
        self.start = frozenset(start)
        self.assign = {
            state: as_content_model(model) for state, model in assign.items()
        }
        if check:
            self.check_well_formed()

    def check_well_formed(self):
        """Raise :class:`SchemaError` unless all Definition-3 conditions hold."""
        if self.initial not in self.states:
            raise SchemaError("initial state must be a state")
        for (source, symbol), target in self.transitions.items():
            if source not in self.states or target not in self.states:
                raise SchemaError("transition endpoints must be states")
            if symbol not in self.alphabet:
                raise SchemaError(f"transition on unknown name {symbol!r}")
            if target == self.initial:
                raise SchemaError(
                    "the initial state may not have incoming transitions"
                )
        for state in self.states:
            if state == self.initial:
                continue
            if state not in self.assign:
                raise SchemaError(f"state {state!r} has no content model")
        if self.initial in self.assign:
            raise SchemaError("the initial state takes no content model")
        if not self.start <= self.alphabet:
            raise SchemaError("start names must be element names")
        for state in self.states:
            if state == self.initial:
                continue
            for name in self.assign[state].element_names():
                if (state, name) not in self.transitions:
                    raise SchemaError(
                        f"state {state!r} allows child {name!r} but has no "
                        f"transition for it (Definition 3)"
                    )

    # -- runs ---------------------------------------------------------------
    def successor(self, state, name):
        """The unique successor state, or ``None`` when undefined."""
        return self.transitions.get((state, name))

    def state_of(self, ancestor_string):
        """``A(anc-str)``: the state after reading the ancestor string."""
        state = self.initial
        for name in ancestor_string:
            state = self.transitions.get((state, name))
            if state is None:
                return None
        return state

    # -- validation -----------------------------------------------------------
    def validate(self, document):
        """Validate ``document``; returns a list of violations (empty = ok)."""
        violations = []
        root = document.root
        if root.name not in self.start:
            violations.append(
                f"root element <{root.name}> is not an allowed start "
                f"element {sorted(self.start)}"
            )
            return violations
        state = self.transitions.get((self.initial, root.name))
        if state is None:
            violations.append(
                f"no state for root element <{root.name}>"
            )
            return violations
        self._validate_node(root, state, "/" + root.name, violations)
        return violations

    def _validate_node(self, node, state, path, violations):
        model = self.assign[state]
        violations.extend(model.check_node(node, path=path))
        for child in node.children:
            child_state = self.transitions.get((state, child.name))
            if child_state is None:
                # The content-model check above already flagged this child
                # (Definition 3 guarantees transitions for allowed names).
                continue
            self._validate_node(
                child, child_state, f"{path}/{child.name}", violations
            )

    def is_valid(self, document):
        """True iff the document satisfies this schema."""
        return not self.validate(document)

    # -- structure --------------------------------------------------------------
    @property
    def size(self):
        """The paper's |A| measure: the number of states."""
        return len(self.states)

    @property
    def total_size(self):
        """States plus content-model sizes (for blow-up measurements)."""
        return len(self.states) + sum(
            model.size for model in self.assign.values()
        )

    def reachable_states(self):
        """States reachable from ``initial`` through allowed children.

        A transition ``(q, a)`` is *useful* only when ``q`` is the initial
        state and ``a`` is in ``S``, or ``a`` occurs in the content model of
        ``q`` — the pruning the paper describes after Lemma 6.
        """
        seen = {self.initial}
        worklist = [self.initial]
        while worklist:
            state = worklist.pop()
            if state == self.initial:
                allowed = self.start
            else:
                allowed = self.assign[state].element_names()
            for name in allowed:
                target = self.transitions.get((state, name))
                if target is not None and target not in seen:
                    seen.add(target)
                    worklist.append(target)
        return frozenset(seen)

    def trimmed(self):
        """Restrict to usefully-reachable states."""
        keep = self.reachable_states()
        transitions = {
            (source, name): target
            for (source, name), target in self.transitions.items()
            if source in keep and target in keep
        }
        # Keep Definition 3 satisfied: drop transitions whose target was
        # pruned only if the name cannot occur; names occurring in content
        # models always have kept targets because reachability followed them.
        return DFABasedXSD(
            states=keep,
            alphabet=self.alphabet,
            transitions=transitions,
            initial=self.initial,
            start=self.start,
            assign={s: m for s, m in self.assign.items() if s in keep},
        )

    def pruned(self):
        """Drop useless transitions and restrict to reachable states.

        A transition ``(q, a)`` with ``a`` not occurring in ``lambda(q)``
        (or, from the initial state, ``a`` not in ``S``) can never be taken
        by a node of a conforming document: the parent's content-model
        check fails first.  Removing such transitions therefore preserves
        the document language while making the ancestor automaton as
        sparse as the content models — which keeps Algorithm 2's state
        elimination tractable and its output readable.
        """
        keep = self.reachable_states()
        transitions = {}
        for state in keep:
            if state == self.initial:
                allowed = self.start
            else:
                allowed = self.assign[state].element_names()
            for name in allowed:
                target = self.transitions.get((state, name))
                if target is not None and target in keep:
                    transitions[(state, name)] = target
        return DFABasedXSD(
            states=keep,
            alphabet=self.alphabet,
            transitions=transitions,
            initial=self.initial,
            start=self.start,
            assign={s: m for s, m in self.assign.items() if s in keep},
        )

    def ancestor_dfa(self, accepting=()):
        """The underlying automaton as a :class:`repro.automata.dfa.DFA`.

        Args:
            accepting: states to mark accepting (Algorithm 2 marks one
                state at a time).
        """
        from repro.automata.dfa import DFA

        return DFA(
            states=self.states,
            alphabet=self.alphabet,
            transitions=self.transitions,
            initial=self.initial,
            accepting=frozenset(accepting),
        )

    def is_k_suffix(self, k):
        """True iff the type of a node depends only on the last ``k`` labels.

        Delegates to :func:`repro.translation.ksuffix.check_k_suffix`.
        """
        from repro.translation.ksuffix import check_k_suffix

        return check_k_suffix(self, k)

    def __repr__(self):
        return (
            f"<DFABasedXSD states={len(self.states)} "
            f"alphabet={len(self.alphabet)} start={sorted(self.start)}>"
        )
