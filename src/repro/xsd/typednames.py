"""Typed element names ``a[t]`` (the paper's TEName).

A :class:`TypedName` *is a string* (``"a[t]"``), so it can be used directly
as a regex symbol, printed, hashed and compared like any name — while still
exposing ``element_name`` and ``type_name`` components.
"""

from __future__ import annotations

from repro.errors import SchemaError


class TypedName(str):
    """A typed element name, rendered ``element[type]``.

    Attributes:
        element_name: the element name ``a``.
        type_name: the complex type name ``t``.
    """

    def __new__(cls, element_name, type_name):
        if "[" in element_name or "]" in element_name:
            raise SchemaError(
                f"element name {element_name!r} may not contain brackets"
            )
        instance = super().__new__(cls, f"{element_name}[{type_name}]")
        instance.element_name = element_name
        instance.type_name = type_name
        return instance


def split_typed_name(symbol):
    """Split a typed-name string back into ``(element_name, type_name)``.

    Accepts both :class:`TypedName` instances and plain ``"a[t]"`` strings.
    """
    if isinstance(symbol, TypedName):
        return symbol.element_name, symbol.type_name
    if not symbol.endswith("]") or "[" not in symbol:
        raise SchemaError(f"{symbol!r} is not a typed element name")
    element_name, type_name = symbol[:-1].split("[", 1)
    return element_name, type_name


def erase_type(symbol):
    """The paper's µ: strip the type from a typed element name."""
    return split_typed_name(symbol)[0]
