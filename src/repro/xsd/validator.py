"""Typed validation of XML documents against formal XSDs (Definition 2).

A document conforms iff a *correct typing* exists: the root gets a start
type, each node a type for its own label, and each node's children (with
their types) spell a word in the node's content model.  EDC makes the
typing unique, so validation is a single top-down pass: the child's type is
determined by its name and the parent's type.
"""

from __future__ import annotations

from repro.xsd.typednames import TypedName


class XSDValidationReport:
    """Outcome of validating one document against an XSD.

    Attributes:
        violations: list of human-readable violation strings.
        typing: dict mapping each typed node to its assigned type name, in
            document order; partial when validation failed early.  Keys are
            stable XPath-style indexed paths such as
            ``/doc[1]/item[2]`` (the ordinal counts same-named siblings,
            1-based), so they survive the document tree being garbage
            collected and distinguish equal-named siblings — unlike the
            ``id(node)`` keys used previously, which could be recycled by
            the allocator and were opaque to callers.
    """

    __slots__ = ("violations", "typing")

    def __init__(self):
        self.violations = []
        self.typing = {}

    @property
    def valid(self):
        return not self.violations

    def type_at(self, path):
        """The type assigned at an indexed path, or ``None``."""
        return self.typing.get(path)


def validate_xsd(xsd, document):
    """Validate ``document`` against ``xsd``.

    Returns:
        An :class:`XSDValidationReport`; ``report.typing`` is the paper's
        (unique) typing µ restricted to the nodes that received a type.
    """
    from repro.resilience.faults import probe

    probe("validate")
    report = XSDValidationReport()
    root = document.root
    root_type = xsd.start_type(root.name)
    if root_type is None:
        report.violations.append(
            f"root element <{root.name}> is not declared "
            f"(allowed: {sorted(_start_names(xsd))})"
        )
        return report
    _validate_node(
        xsd, root, root_type, "/" + root.name, f"/{root.name}[1]", report
    )
    return report


def _start_names(xsd):
    names = set()
    for typed in xsd.start:
        names.add(typed.element_name if isinstance(typed, TypedName)
                  else typed.split("[", 1)[0])
    return names


def _validate_node(xsd, node, type_name, path, typed_path, report):
    report.typing[typed_path] = type_name
    model = xsd.rho[type_name]

    # Children must spell a word of the *typed* content model.  By EDC the
    # typed word is determined by the child names, so it suffices to match
    # the erased word against the erased expression -- but we build the
    # typed word anyway so nodes whose name has no type in this model are
    # reported precisely.
    child_types = []
    recognized = True
    for child in node.children:
        child_type = xsd.child_type(type_name, child.name)
        if child_type is None:
            report.violations.append(
                f"{path}: element <{child.name}> is not allowed under "
                f"<{node.name}> (type {type_name})"
            )
            recognized = False
            continue
        child_types.append((child, child_type))
    if recognized:
        word = [
            str(TypedName(child.name, child_type))
            for child, child_type in child_types
        ]
        if not model.matches_children(word):
            shown = " ".join(child.name for child in node.children)
            report.violations.append(
                f"{path}: children of <{node.name}> [{shown or 'none'}] do "
                f"not match the content model of type {type_name}"
            )
    if not model.mixed and node.has_text():
        report.violations.append(
            f"{path}: element <{node.name}> (type {type_name}) may not "
            f"contain text"
        )
    declared = {use.name for use in model.attributes}
    for use in model.attributes:
        if use.required and use.name not in node.attributes:
            report.violations.append(
                f"{path}: element <{node.name}> is missing required "
                f"attribute {use.name!r}"
            )
    for attr_name in node.attributes:
        if attr_name not in declared:
            report.violations.append(
                f"{path}: element <{node.name}> has undeclared attribute "
                f"{attr_name!r}"
            )
    ordinals = {}
    for child, child_type in child_types:
        ordinal = ordinals[child.name] = ordinals.get(child.name, 0) + 1
        _validate_node(
            xsd,
            child,
            child_type,
            f"{path}/{child.name}",
            f"{typed_path}/{child.name}[{ordinal}]",
            report,
        )
