"""Parsing W3C ``.xsd`` files into the formal model.

The supported subset covers the constructs the paper's core concerns:
global and local element declarations, named and anonymous complex types,
``xs:sequence`` / ``xs:choice`` / ``xs:all`` particles with occurrence
bounds, ``xs:group`` and ``xs:attributeGroup`` definitions and references,
``mixed`` content, attribute declarations, and text-only elements with
simple types.  Namespace prefixes on schema elements are recognized by
local name, so any prefix bound to the XML Schema namespace works.

Anonymous complex types receive synthesized names (``T_<element>``,
``T_<element>_2``, ...), matching how the paper's tool displays them.
"""

from __future__ import annotations

from repro.errors import ParseError, SchemaError
from repro.regex.ast import (
    EPSILON,
    concat,
    counter,
    interleave,
    optional,
    plus,
    star,
    sym,
    union,
)
from repro.xmlmodel.parser import parse_document
from repro.xsd.content import AttributeUse, ContentModel
from repro.xsd.model import XSD
from repro.xsd.typednames import TypedName

TEXT_TYPE_PREFIX = "Ttext_"
"""Synthesized complex-type names for text-only (simple-typed) elements."""


def read_xsd(text):
    """Parse ``.xsd`` text into a formal :class:`~repro.xsd.model.XSD`."""
    document = parse_document(text)
    return xsd_from_xml(document)


def xsd_from_xml(document):
    """Interpret an already-parsed ``xs:schema`` document."""
    root = document.root
    if _local(root.name) != "schema":
        raise ParseError(f"expected xs:schema, found <{root.name}>")
    builder = _SchemaBuilder(root)
    return builder.build()


def _local(name):
    return name.split(":", 1)[1] if ":" in name else name


def _first_child(node, local_name):
    for child in node.children:
        if _local(child.name) == local_name:
            return child
    return None


class _SchemaBuilder:
    def __init__(self, schema_element):
        self.schema = schema_element
        self.named_types = {}      # name -> complexType element
        self.groups = {}           # name -> group element
        self.attribute_groups = {} # name -> attributeGroup element
        self.global_elements = {}  # name -> element element
        self.rho = {}
        self.type_order = []
        self.anonymous_counts = {}
        self.simple_types = set()

    def build(self):
        for child in self.schema.children:
            local = _local(child.name)
            if local == "complexType":
                self.named_types[child.attributes["name"]] = child
            elif local == "group":
                self.groups[child.attributes["name"]] = child
            elif local == "attributeGroup":
                self.attribute_groups[child.attributes["name"]] = child
            elif local == "element":
                self.global_elements[child.attributes["name"]] = child
            elif local in ("annotation", "import", "include", "simpleType"):
                continue
            else:
                raise ParseError(
                    f"unsupported top-level schema construct <{child.name}>"
                )

        start = set()
        for name, element in self.global_elements.items():
            type_name = self._type_of_element(element)
            start.add(TypedName(name, type_name))

        # Named complex types that are referenced but not yet processed.
        for name in list(self.named_types):
            self._ensure_named_type(name)

        ename = set()
        for model in self.rho.values():
            for symbol in model.element_names():
                ename.add(TypedName(*_split(symbol)).element_name)
        for typed in start:
            ename.add(typed.element_name)

        return XSD(
            ename=ename,
            types=set(self.rho),
            rho=self.rho,
            start=start,
        )

    # -- elements --------------------------------------------------------
    def _type_of_element(self, element):
        """The complex-type name an element declaration refers to."""
        if "ref" in element.attributes:
            target = self.global_elements.get(element.attributes["ref"])
            if target is None:
                raise SchemaError(
                    f"element ref {element.attributes['ref']!r} is undefined"
                )
            return self._type_of_element(target)
        name = element.attributes.get("name", "anonymous")
        declared = element.attributes.get("type")
        if declared is not None:
            if declared in self.named_types:
                self._ensure_named_type(declared)
                return declared
            if ":" in declared:
                # A prefixed simple type (xs:string etc.): synthesize a
                # text-only complex type for it.
                return self._text_type(declared)
            raise SchemaError(
                f"element {name!r} references undefined type {declared!r}"
            )
        inline = _first_child(element, "complexType")
        if inline is not None:
            type_name = self._fresh_type_name(name)
            self._process_complex_type(inline, type_name)
            return type_name
        simple = _first_child(element, "simpleType")
        if simple is not None:
            return self._text_type("xs:anySimpleType")
        # No type information: anyType-like; model as mixed anything is out
        # of the core scope -- use a text-only type.
        return self._text_type("xs:anyType")

    def _text_type(self, simple_name):
        type_name = TEXT_TYPE_PREFIX + simple_name.replace(":", "_")
        if type_name not in self.rho:
            self.rho[type_name] = ContentModel(EPSILON, mixed=True)
            self.simple_types.add(type_name)
        return type_name

    def _fresh_type_name(self, element_name):
        base = f"T_{element_name}"
        count = self.anonymous_counts.get(base, 0) + 1
        self.anonymous_counts[base] = count
        return base if count == 1 else f"{base}_{count}"

    def _ensure_named_type(self, name):
        if name in self.rho:
            return
        element = self.named_types.get(name)
        if element is None:
            raise SchemaError(f"complex type {name!r} is undefined")
        self._process_complex_type(element, name)

    # -- complex types -----------------------------------------------------
    def _process_complex_type(self, node, type_name):
        if type_name in self.rho:
            return
        self.rho[type_name] = None  # reserve (guards against cycles)
        mixed = node.attributes.get("mixed", "false") in ("true", "1")
        regex = EPSILON
        attributes = []
        for child in node.children:
            local = _local(child.name)
            if local in ("sequence", "choice", "all", "group", "element"):
                regex = self._particle(child)
            elif local == "attribute":
                attributes.append(self._attribute(child))
            elif local == "attributeGroup":
                attributes.extend(self._attribute_group(child))
            elif local == "annotation":
                continue
            else:
                raise ParseError(
                    f"unsupported construct <{child.name}> in complexType "
                    f"{type_name!r}"
                )
        self.rho[type_name] = ContentModel(
            regex, mixed=mixed, attributes=attributes
        )

    # -- particles ------------------------------------------------------------
    def _particle(self, node):
        local = _local(node.name)
        if local == "element":
            inner = self._element_symbol(node)
        elif local == "sequence":
            inner = concat(*(self._particle(child)
                             for child in self._particle_children(node)))
        elif local == "choice":
            inner = union(*(self._particle(child)
                            for child in self._particle_children(node)))
        elif local == "all":
            inner = interleave(*(self._particle(child)
                                 for child in self._particle_children(node)))
        elif local == "group":
            reference = node.attributes.get("ref")
            if reference is None:
                raise ParseError("xs:group particles must carry ref=")
            definition = self.groups.get(reference)
            if definition is None:
                raise SchemaError(f"group {reference!r} is undefined")
            body = self._particle_children(definition)
            if len(body) != 1:
                raise ParseError(
                    f"group {reference!r} must contain exactly one particle"
                )
            inner = self._particle(body[0])
        else:
            raise ParseError(f"unsupported particle <{node.name}>")
        return _apply_occurs(inner, node)

    def _particle_children(self, node):
        return [
            child
            for child in node.children
            if _local(child.name) not in ("annotation",)
        ]

    def _element_symbol(self, node):
        if "ref" in node.attributes:
            name = node.attributes["ref"]
        else:
            name = node.attributes["name"]
        type_name = self._type_of_element(node)
        return sym(TypedName(name, type_name))

    # -- attributes ---------------------------------------------------------
    def _attribute(self, node):
        if "ref" in node.attributes:
            raise ParseError("top-level attribute references are unsupported")
        use = node.attributes.get("use", "optional")
        return AttributeUse(
            node.attributes["name"],
            required=(use == "required"),
            type_name=node.attributes.get("type"),
        )

    def _attribute_group(self, node):
        reference = node.attributes.get("ref")
        if reference is None:
            raise ParseError("inline attributeGroup must carry ref=")
        definition = self.attribute_groups.get(reference)
        if definition is None:
            raise SchemaError(f"attributeGroup {reference!r} is undefined")
        out = []
        for child in definition.children:
            local = _local(child.name)
            if local == "attribute":
                out.append(self._attribute(child))
            elif local == "attributeGroup":
                out.extend(self._attribute_group(child))
        return out


def _apply_occurs(regex, node):
    low = int(node.attributes.get("minOccurs", "1"))
    high_raw = node.attributes.get("maxOccurs", "1")
    if high_raw == "unbounded":
        if low == 0:
            return star(regex)
        if low == 1:
            return plus(regex)
        return counter(regex, low, None)
    high = int(high_raw)
    if low == 1 and high == 1:
        return regex
    if low == 0 and high == 1:
        return optional(regex)
    return counter(regex, low, high)


def _split(symbol):
    from repro.xsd.typednames import split_typed_name

    return split_typed_name(symbol)
