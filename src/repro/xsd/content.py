"""Content models: the right-hand sides of rules and type definitions.

The paper's formal model uses bare deterministic regular expressions as
content models.  The practical language additionally carries a ``mixed``
flag and attribute uses.  Because none of the translation algorithms ever
*rebuilds* a content model (they only move them around, erase types from
their symbols, or re-attach types — see Section 4.1: deterministic
expressions are not closed under Boolean operations), the whole pipeline is
implemented over this single :class:`ContentModel` wrapper; the formal core
is the special case ``mixed=False`` with no attributes.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.regex.ast import Regex, Symbol, concat, counter, interleave, optional
from repro.regex.ast import plus as regex_plus
from repro.regex.ast import star as regex_star
from repro.regex.ast import union as regex_union
from repro.regex.ast import (
    Concat,
    Counter,
    EmptySet,
    Epsilon,
    Interleave,
    Optional,
    Plus,
    Star,
    Union,
)
from repro.regex.derivatives import DerivativeMatcher


class AttributeUse:
    """One attribute use in a content model.

    Attributes:
        name: the attribute name (without the ``@``).
        required: whether the attribute must be present.
        type_name: optional simple-type name (e.g. ``"xs:string"``).
    """

    __slots__ = ("name", "required", "type_name")

    def __init__(self, name, required=True, type_name=None):
        self.name = name
        self.required = required
        self.type_name = type_name

    def __eq__(self, other):
        return (
            isinstance(other, AttributeUse)
            and self.name == other.name
            and self.required == other.required
            and self.type_name == other.type_name
        )

    def __hash__(self):
        return hash((self.name, self.required, self.type_name))

    def __repr__(self):
        marker = "" if self.required else "?"
        return f"AttributeUse({self.name}{marker})"


class ContentModel:
    """A content model: element regex + mixedness + attribute uses.

    Attributes:
        regex: :class:`~repro.regex.ast.Regex` over element names (or typed
            element names inside XSDs).
        mixed: whether character data may be interleaved with children.
        attributes: tuple of :class:`AttributeUse`.
    """

    __slots__ = ("regex", "mixed", "attributes", "_matcher")

    def __init__(self, regex, mixed=False, attributes=()):
        if not isinstance(regex, Regex):
            raise SchemaError(f"content model needs a Regex, got {regex!r}")
        self.regex = regex
        self.mixed = bool(mixed)
        self.attributes = tuple(attributes)
        names = [use.name for use in self.attributes]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate attribute use in {names}")
        self._matcher = None

    # -- structural ------------------------------------------------------
    def map_symbols(self, function):
        """A copy whose regex symbols are rewritten by ``function``.

        ``function`` receives each symbol name and returns the new name.
        This is the only transformation the translation algorithms apply to
        content models (type erasure µ in Algorithm 1, type attachment in
        Algorithm 4); it preserves determinism because it never changes the
        expression's shape.
        """
        return ContentModel(
            _map_regex_symbols(self.regex, function),
            mixed=self.mixed,
            attributes=self.attributes,
        )

    def element_names(self):
        """The set of element names occurring in the regex."""
        return self.regex.symbols()

    @property
    def size(self):
        """Paper size measure: symbol occurrences (+ attribute uses)."""
        return self.regex.size + len(self.attributes)

    def attribute(self, name):
        """The :class:`AttributeUse` with this name, or ``None``."""
        for use in self.attributes:
            if use.name == name:
                return use
        return None

    # -- validation -------------------------------------------------------
    def matcher(self):
        """A cached :class:`DerivativeMatcher` for the element regex."""
        if self._matcher is None:
            self._matcher = DerivativeMatcher(self.regex)
        return self._matcher

    def matches_children(self, names):
        """True iff the child-string ``names`` matches the regex."""
        return self.matcher().matches(list(names))

    def check_node(self, node, path="?"):
        """Validate one XML element's content and attributes.

        Returns a list of human-readable violations (empty = conforming).
        """
        violations = []
        if not self.mixed and node.has_text():
            violations.append(
                f"{path}: element <{node.name}> may not contain text"
            )
        children = node.ch_str()
        if not self.matches_children(children):
            shown = " ".join(children) if children else "(no children)"
            violations.append(
                f"{path}: children of <{node.name}> [{shown}] do not match "
                f"content model {self.regex}"
            )
        declared = {use.name for use in self.attributes}
        for use in self.attributes:
            if use.required and use.name not in node.attributes:
                violations.append(
                    f"{path}: element <{node.name}> is missing required "
                    f"attribute {use.name!r}"
                )
        for attr_name in node.attributes:
            if attr_name not in declared:
                violations.append(
                    f"{path}: element <{node.name}> has undeclared "
                    f"attribute {attr_name!r}"
                )
        return violations

    # -- value semantics ---------------------------------------------------
    def __eq__(self, other):
        return (
            isinstance(other, ContentModel)
            and self.regex == other.regex
            and self.mixed == other.mixed
            and self.attributes == other.attributes
        )

    def __hash__(self):
        return hash((self.regex, self.mixed, self.attributes))

    def __repr__(self):
        mixed = " mixed" if self.mixed else ""
        return f"ContentModel({self.regex}{mixed}, attrs={list(self.attributes)})"


def as_content_model(value):
    """Coerce a Regex into a ContentModel (formal-core convenience)."""
    if isinstance(value, ContentModel):
        return value
    return ContentModel(value)


def _map_regex_symbols(node, function):
    if isinstance(node, Symbol):
        return Symbol(function(node.name))
    if isinstance(node, (EmptySet, Epsilon)):
        return node
    if isinstance(node, Concat):
        return concat(*(_map_regex_symbols(c, function) for c in node.children))
    if isinstance(node, Union):
        return regex_union(
            *(_map_regex_symbols(c, function) for c in node.children)
        )
    if isinstance(node, Interleave):
        return interleave(
            *(_map_regex_symbols(c, function) for c in node.children)
        )
    if isinstance(node, Star):
        return regex_star(_map_regex_symbols(node.child, function))
    if isinstance(node, Plus):
        return regex_plus(_map_regex_symbols(node.child, function))
    if isinstance(node, Optional):
        return optional(_map_regex_symbols(node.child, function))
    if isinstance(node, Counter):
        return counter(
            _map_regex_symbols(node.child, function), node.low, node.high
        )
    raise SchemaError(f"unknown regex node {node!r}")
