"""Schema-driven random document generation.

Given a DFA-based XSD, :func:`generate_document` samples a random valid
document: child-words are sampled by random walks over the content-model
DFAs (restricted to productive letters), and a per-state *cheap word* —
computed during the productivity fixpoint — guarantees termination once the
depth budget is spent, because cheap words only use letters whose states
became productive in strictly earlier rounds.

Used by the round-trip property tests ("every document sampled from the
source schema validates against the translated schema") and by the
validation benchmarks.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SchemaError
from repro.regex.derivatives import to_dfa
from repro.xmlmodel.tree import XMLDocument, XMLElement


class _GeneratorTables:
    """Precomputed per-state tables: ranks, content DFAs, cheap words."""

    def __init__(self, schema):
        self.schema = schema
        self.content_dfas = {}
        for state in schema.states:
            if state == schema.initial:
                continue
            model = schema.assign[state]
            self.content_dfas[state] = to_dfa(
                model.regex, alphabet=model.element_names()
            )
        self.ranks = {}
        self.cheap_words = {}
        self._fixpoint()

    def _fixpoint(self):
        round_number = 0
        changed = True
        while changed:
            changed = False
            round_number += 1
            for state, content in self.content_dfas.items():
                if state in self.ranks:
                    continue
                allowed = {
                    name
                    for name in content.alphabet
                    if self.schema.transitions.get((state, name)) in self.ranks
                }
                word = _shortest_word_over(content, allowed)
                if word is not None:
                    self.ranks[state] = round_number
                    self.cheap_words[state] = word
                    changed = True

    def productive_letters(self, state):
        content = self.content_dfas[state]
        return {
            name
            for name in content.alphabet
            if self.schema.transitions.get((state, name)) in self.ranks
        }


def _shortest_word_over(content_dfa, allowed):
    """Shortest accepted word using only ``allowed`` letters, or ``None``."""
    parents = {content_dfa.initial: None}
    queue = deque([content_dfa.initial])
    while queue:
        state = queue.popleft()
        if state in content_dfa.accepting:
            word = []
            current = state
            while parents[current] is not None:
                previous, name = parents[current]
                word.append(name)
                current = previous
            word.reverse()
            return word
        for name in sorted(allowed):
            target = content_dfa.transitions.get((state, name))
            if target is not None and target not in parents:
                parents[target] = (state, name)
                queue.append(target)
    return None


class DocumentGenerator:
    """Reusable sampler of valid documents for one DFA-based XSD."""

    def __init__(self, schema):
        self.schema = schema
        self.tables = _GeneratorTables(schema)
        self.roots = sorted(
            name
            for name in schema.start
            if schema.transitions.get((schema.initial, name))
            in self.tables.ranks
        )
        if not self.roots:
            raise SchemaError(
                "the schema accepts no documents (no productive root)"
            )

    def generate(self, rng, max_depth=5, max_children=6):
        """Sample one valid :class:`XMLDocument`.

        Args:
            rng: a ``random.Random``-like source.
            max_depth: depth budget; below it, cheap words force
                termination.
            max_children: soft cap on sampled child-word length.
        """
        root_name = self.roots[rng.randrange(len(self.roots))]
        state = self.schema.transitions[(self.schema.initial, root_name)]
        root = self._build(root_name, state, rng, max_depth, max_children)
        return XMLDocument(root)

    def _build(self, name, state, rng, budget, max_children):
        node = XMLElement(name)
        model = self.schema.assign[state]
        for use in model.attributes:
            if use.required or rng.random() < 0.5:
                node.attributes[use.name] = f"v{rng.randrange(100)}"
        if budget <= 0:
            word = self.tables.cheap_words[state]
        else:
            word = self._sample_word(state, rng, max_children)
        for child_name in word:
            child_state = self.schema.transitions[(state, child_name)]
            node.append(
                self._build(
                    child_name, child_state, rng, budget - 1, max_children
                )
            )
        if model.mixed and rng.random() < 0.5:
            node.append_text(f"text{rng.randrange(100)}")
        return node

    def _sample_word(self, state, rng, max_children):
        """Random walk over the content DFA, biased to stop when allowed."""
        content = self.tables.content_dfas[state]
        allowed = self.tables.productive_letters(state)
        current = content.initial
        word = []
        while True:
            moves = [
                name
                for name in sorted(allowed)
                if content.transitions.get((current, name)) is not None
            ]
            can_stop = current in content.accepting
            if can_stop and (not moves or len(word) >= max_children
                             or rng.random() < 0.4):
                return word
            if not moves:
                # Dead end that is not accepting cannot happen on the
                # restricted DFA of a productive state unless we walked
                # into a non-co-reachable region; restart conservatively.
                return self.tables.cheap_words[state]
            name = moves[rng.randrange(len(moves))]
            current = content.transitions[(current, name)]
            word.append(name)
            if len(word) > max_children * 4:
                # Escape very long loops: finish with a shortest completion.
                completion = _shortest_completion(
                    content, current, allowed
                )
                if completion is None:
                    return self.tables.cheap_words[state]
                return word + completion


def _shortest_completion(content_dfa, from_state, allowed):
    """Shortest suffix leading to acceptance, or ``None``."""
    parents = {from_state: None}
    queue = deque([from_state])
    while queue:
        state = queue.popleft()
        if state in content_dfa.accepting:
            word = []
            current = state
            while parents[current] is not None:
                previous, name = parents[current]
                word.append(name)
                current = previous
            word.reverse()
            return word
        for name in sorted(allowed):
            target = content_dfa.transitions.get((state, name))
            if target is not None and target not in parents:
                parents[target] = (state, name)
                queue.append(target)
    return None


def generate_document(schema, rng, max_depth=5, max_children=6):
    """One-shot convenience wrapper around :class:`DocumentGenerator`."""
    return DocumentGenerator(schema).generate(
        rng, max_depth=max_depth, max_children=max_children
    )
