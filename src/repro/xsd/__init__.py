"""XML Schema substrate: formal model (Definition 2), DFA-based XSDs
(Definition 3), validation, ``.xsd`` I/O, minimization and equivalence."""

from repro.xsd.content import AttributeUse, ContentModel, as_content_model
from repro.xsd.dfa_based import DFABasedXSD
from repro.xsd.equivalence import (
    Divergence,
    dfa_xsd_counterexample_pair,
    dfa_xsd_divergences,
    dfa_xsd_equivalent,
    productive_roots,
    productive_states,
    xsd_equivalent,
)
from repro.xsd.generator import DocumentGenerator, generate_document
from repro.xsd.minimize import minimize_dfa_based, minimize_xsd
from repro.xsd.model import XSD
from repro.xsd.reader import read_xsd, xsd_from_xml
from repro.xsd.typednames import TypedName, erase_type, split_typed_name
from repro.xsd.validator import XSDValidationReport, validate_xsd
from repro.xsd.writer import write_xsd, xsd_to_xml

__all__ = [
    "AttributeUse",
    "ContentModel",
    "DFABasedXSD",
    "Divergence",
    "DocumentGenerator",
    "TypedName",
    "XSD",
    "XSDValidationReport",
    "as_content_model",
    "dfa_xsd_counterexample_pair",
    "dfa_xsd_divergences",
    "dfa_xsd_equivalent",
    "erase_type",
    "generate_document",
    "minimize_dfa_based",
    "minimize_xsd",
    "productive_roots",
    "productive_states",
    "read_xsd",
    "split_typed_name",
    "validate_xsd",
    "write_xsd",
    "xsd_equivalent",
    "xsd_from_xml",
    "xsd_to_xml",
]
