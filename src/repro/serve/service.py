"""The validation service: request processing behind the admission layer.

:class:`ValidationService` is the synchronous half of ``repro serve`` —
everything that runs *inside a worker thread* once the daemon has
admitted a request.  It owns the shared state every request rides on:

* one two-tier :class:`~repro.engine.cache.SchemaCache` (identity
  weakref, then structural fingerprint) shared across all requests;
* a bounded text-level memo mapping ``sha256(kind + schema text)`` to
  the parsed formal XSD, so a hot schema's steady-state cost is one
  dict probe plus the cache's ~2 µs identity hit — no re-parse, no
  re-fingerprint;
* the :class:`~repro.serve.admission.CircuitBreaker` keyed by the same
  schema hash, recording every compile-side
  :class:`~repro.errors.BudgetExceeded` and quarantining repeat
  offenders (Theorem 8/9 blowups fail fast with cached stats instead of
  burning a fresh budget allowance per request).

Per-request isolation reuses :func:`repro.engine.validate_many`'s
machinery verbatim: the document runs under ``policy="isolate"`` with
the service's :class:`~repro.resilience.ParserLimits` and the remaining
slice of the request deadline (admission wait already spent counts
against it — the deadline is an end-to-end promise, not a per-stage
one), so a hostile document yields a structured
:class:`~repro.resilience.DocumentError`, never an escaped exception.

Schema *compilation* runs under a per-request
:class:`~repro.observability.ResourceBudget` built from the tenant's
configured allowance; the states it actually consumed are accounted to
the tenant's ``serve.tenant.compile_states`` counter.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict

from repro.engine.cache import SchemaCache
from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    ParseError,
    ReproError,
    SchemaError,
)
from repro.observability import (
    ResourceBudget,
    labeled,
    resolve_registry,
)
from repro.observability.tracing import span
from repro.resilience import DocumentError, FailurePolicy, ParserLimits
from repro.serve.admission import CircuitBreaker

SCHEMA_KINDS = ("xsd", "bonxai", "dtd")

#: HTTP status for each :class:`DocumentError` kind a document can earn.
_DOCUMENT_STATUS = {
    "parse": 422,
    "limit": 422,
    "deadline": 504,
    "budget": 503,
}


class QuarantinedSchema(ReproError):
    """A request refused because the schema's circuit is open.

    Attributes:
        retry_after: seconds until the circuit half-opens.
        stats: the cached partial-progress figures from the
            ``BudgetExceeded`` that opened the circuit.
    """

    def __init__(self, message, retry_after=0.0, stats=None):
        self.retry_after = retry_after
        self.stats = dict(stats or {})
        super().__init__(message)


class ServeConfig:
    """Tunables for one serve daemon (all knobs surface on the CLI).

    Args:
        host / port: listen address (``port=0`` picks a free port).
        workers: worker-thread count (requests executing concurrently).
        queue_depth: admitted requests allowed to wait for a worker
            beyond the executing ones; more than ``workers +
            queue_depth`` inflight sheds with 429.
        tenant_inflight: per-tenant admitted cap (``None`` disables).
        deadline: default end-to-end seconds per request.
        max_deadline: ceiling on a client-requested deadline.
        drain_deadline: seconds SIGTERM waits for inflight requests.
        budget_states / budget_seconds: per-request compile allowance
            (the per-tenant :class:`ResourceBudget`).
        breaker_threshold / breaker_cooldown / breaker_global_limit:
            circuit-breaker tuning (see
            :class:`~repro.serve.admission.CircuitBreaker`).
        retry_after: the ``Retry-After`` hint on shed responses, seconds.
        limits: :class:`ParserLimits` applied to request documents.
        max_body_bytes: largest accepted HTTP body.
        schema_memo_size: schemas kept in the text-level parse memo.
        access_log: path for one-line JSONL access logs (``None``
            disables; enabling also turns request tracing on so every
            line carries a trace id).
        trace_log: path for the tail sampler's retained-trace JSONL
            ring (``None`` keeps retained traces in memory only).
        log_max_bytes: rotation cap for both log rings, bytes.
        trace_requests: trace requests even with no log file configured
            (retained traces then live in memory, served by
            ``GET /debug/traces``).
        tail_latency: seconds past which a request trace counts as
            *slow* and is always retained (``None`` disables the
            latency criterion).
        tail_reservoir: reservoir slots for fast traces (``0`` retains
            only errored/slow traces — what the smoke test uses to make
            retention deterministic).
        tail_retain: retained traces kept in memory for
            ``GET /debug/traces``.
    """

    __slots__ = (
        "host", "port", "workers", "queue_depth", "tenant_inflight",
        "deadline", "max_deadline", "drain_deadline", "budget_states",
        "budget_seconds", "breaker_threshold", "breaker_cooldown",
        "breaker_global_limit", "retry_after", "limits", "max_body_bytes",
        "schema_memo_size", "access_log", "trace_log", "log_max_bytes",
        "trace_requests", "tail_latency", "tail_reservoir", "tail_retain",
    )

    def __init__(self, host="127.0.0.1", port=8080, workers=4,
                 queue_depth=16, tenant_inflight=8, deadline=5.0,
                 max_deadline=30.0, drain_deadline=5.0,
                 budget_states=20_000, budget_seconds=2.0,
                 breaker_threshold=3, breaker_cooldown=30.0,
                 breaker_global_limit=8, retry_after=1.0, limits=None,
                 max_body_bytes=8 * 1024 * 1024, schema_memo_size=128,
                 access_log=None, trace_log=None, log_max_bytes=None,
                 trace_requests=False, tail_latency=0.5, tail_reservoir=4,
                 tail_retain=256):
        for name, value in (("workers", workers), ("deadline", deadline),
                            ("max_deadline", max_deadline),
                            ("drain_deadline", drain_deadline),
                            ("retry_after", retry_after),
                            ("max_body_bytes", max_body_bytes),
                            ("schema_memo_size", schema_memo_size)):
            if value is None or value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        if log_max_bytes is not None and log_max_bytes <= 0:
            raise ValueError(
                f"log_max_bytes must be positive, got {log_max_bytes!r}"
            )
        if tail_latency is not None and tail_latency <= 0:
            raise ValueError(
                f"tail_latency must be positive, got {tail_latency!r}"
            )
        if tail_reservoir < 0:
            raise ValueError(
                f"tail_reservoir must be >= 0, got {tail_reservoir}"
            )
        if tail_retain < 1:
            raise ValueError(f"tail_retain must be >= 1, got {tail_retain}")
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_depth = queue_depth
        self.tenant_inflight = tenant_inflight
        self.deadline = deadline
        self.max_deadline = max_deadline
        self.drain_deadline = drain_deadline
        self.budget_states = budget_states
        self.budget_seconds = budget_seconds
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.breaker_global_limit = breaker_global_limit
        self.retry_after = retry_after
        self.limits = limits if limits is not None else ParserLimits()
        self.max_body_bytes = max_body_bytes
        self.schema_memo_size = schema_memo_size
        self.access_log = access_log
        self.trace_log = trace_log
        self.log_max_bytes = log_max_bytes
        self.trace_requests = trace_requests
        self.tail_latency = tail_latency
        self.tail_reservoir = tail_reservoir
        self.tail_retain = tail_retain

    @property
    def observability_enabled(self):
        """True when request tracing / access logging should be built."""
        return bool(
            self.access_log or self.trace_log or self.trace_requests
        )

    def clamp_deadline(self, requested):
        """The effective deadline for a client-requested allowance."""
        if requested is None:
            return self.deadline
        try:
            value = float(requested)
        except (TypeError, ValueError):
            return self.deadline
        if value <= 0:
            return self.deadline
        return min(value, self.max_deadline)


def schema_key(kind, text):
    """The breaker/memo key: a digest of the schema *text* as presented.

    Text-level on purpose — a schema that cannot even finish compiling
    has no formal XSD to fingerprint, and the breaker must recognise the
    same pathological input on its next arrival without doing any work.
    """
    hasher = hashlib.sha256()
    hasher.update(kind.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(text.encode("utf-8"))
    return hasher.hexdigest()


def _parse_schema(kind, text):
    """Parse schema text and ride the translation square to a formal XSD.

    Returns ``(xsd, model)`` where ``model`` is the kind-native object
    the ``explain`` route needs (the formal XSD itself for ``xsd``).
    """
    from repro.bonxai import compile_schema, parse_bonxai
    from repro.translation import (
        bxsd_to_dfa_based,
        dfa_based_to_xsd,
        dtd_to_bxsd,
    )
    from repro.xmlmodel import parse_dtd
    from repro.xsd import read_xsd

    if kind == "xsd":
        xsd = read_xsd(text)
        return xsd, xsd
    if kind == "dtd":
        dtd = parse_dtd(text)
        return dfa_based_to_xsd(bxsd_to_dfa_based(dtd_to_bxsd(dtd))), dtd
    schema = compile_schema(parse_bonxai(text))
    return dfa_based_to_xsd(bxsd_to_dfa_based(schema.bxsd)), schema


class ValidationService:
    """Worker-side request processing over shared cache + breaker state."""

    def __init__(self, config, registry=None, cache=None, breaker=None):
        self.config = config
        self._registry = resolve_registry(registry)
        self.cache = cache if cache is not None else SchemaCache(maxsize=64)
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
            global_limit=config.breaker_global_limit,
            registry=registry,
        )
        self._memo = OrderedDict()
        self._memo_lock = threading.Lock()

    # -- schema resolution ------------------------------------------------
    def quarantined(self, key):
        """Fast pre-admission probe: ``(retry_after, stats)`` or ``None``."""
        return self.breaker.check(key)

    def _schema_for(self, key, kind, text, tenant):
        """Resolve schema text to ``(CompiledSchema, xsd, model)``.

        Memo hit: one dict probe, then the schema cache's identity tier.
        Memo miss: breaker check, parse + translate + compile under the
        tenant's :class:`ResourceBudget`; ``BudgetExceeded`` feeds the
        breaker before propagating.
        """
        with self._memo_lock:
            entry = self._memo.get(key)
            if entry is not None:
                self._memo.move_to_end(key)
        if entry is not None:
            xsd, model = entry
            return self.cache.get(xsd), xsd, model

        blocked = self.breaker.check(key)
        if blocked is not None:
            retry_after, stats = blocked
            raise QuarantinedSchema(
                "schema quarantined after repeated budget exhaustion",
                retry_after=retry_after, stats=stats,
            )
        budget = ResourceBudget(
            max_states=self.config.budget_states,
            max_seconds=self.config.budget_seconds,
        )
        try:
            with budget, span("serve.schema.compile") as trace:
                trace.set_attribute("schema", key[:12])
                xsd, model = _parse_schema(kind, text)
                compiled = self.cache.get(xsd)
        except BudgetExceeded as exc:
            opened = self.breaker.record_failure(key, stats=exc.stats)
            self._registry.counter("serve.schema.budget_exceeded").inc()
            if opened:
                self._registry.counter(
                    labeled("serve.tenant.quarantines", tenant=tenant)
                ).inc()
            raise
        finally:
            states = budget.states_created
            if states:
                self._registry.counter(
                    labeled("serve.tenant.compile_states", tenant=tenant)
                ).inc(states)
        self.breaker.record_success(key)
        with self._memo_lock:
            self._memo[key] = (xsd, model)
            self._memo.move_to_end(key)
            while len(self._memo) > self.config.schema_memo_size:
                self._memo.popitem(last=False)
        return compiled, xsd, model

    # -- request processing (worker thread) -------------------------------
    def process(self, route, params, tenant, deadline_at):
        """Run one admitted request; returns ``(status, payload dict)``.

        Never raises for request-shaped failures — schema errors,
        budget exhaustion, quarantine, malformed documents, and blown
        deadlines all map to structured (status, payload) pairs.  Only a
        genuine bug escapes (the daemon answers 500).
        """
        kind = params.get("schema_kind", "xsd")
        if kind not in SCHEMA_KINDS:
            return 400, {
                "error": "bad_request",
                "message": f"unknown schema_kind {kind!r} "
                           f"(expected one of {list(SCHEMA_KINDS)})",
            }
        text = params.get("schema")
        document = params.get("document")
        if not isinstance(text, str) or not isinstance(document, str):
            return 400, {
                "error": "bad_request",
                "message": "'schema' and 'document' must be strings",
            }
        key = schema_key(kind, text)
        try:
            compiled, xsd, model = self._schema_for(key, kind, text, tenant)
        except QuarantinedSchema as exc:
            return 503, {
                "error": "quarantined",
                "message": str(exc),
                "retry_after": exc.retry_after,
                "stats": exc.stats,
            }
        except BudgetExceeded as exc:
            return 503, {
                "error": "budget",
                "message": str(exc),
                "stats": exc.stats,
            }
        except (ParseError, SchemaError) as exc:
            return 422, {"error": "schema", "message": str(exc)}

        remaining = deadline_at - time.monotonic()
        if remaining <= 0:
            return 504, {
                "error": "deadline",
                "message": "request deadline spent before validation began",
            }
        if route == "validate":
            return self._do_validate(compiled, document, remaining)
        if route == "explain":
            return self._do_explain(kind, model, document)
        if route == "patch":
            return self._do_patch(compiled, xsd, document, params, remaining)
        return 404, {"error": "not_found", "message": f"no route {route!r}"}

    def _do_validate(self, compiled, document, remaining):
        from repro.engine.batch import validate_many

        outcome = validate_many(
            compiled, [document],
            policy=FailurePolicy.ISOLATE,
            deadline=remaining,
            limits=self.config.limits,
        )[0]
        if outcome.ok:
            report = outcome.report
            return 200, {
                "valid": report.valid,
                "violations": [str(v) for v in report.violations],
                "elapsed_seconds": outcome.elapsed_seconds,
            }
        return self._document_error(outcome.error)

    def _do_explain(self, kind, model, document):
        from repro.observability import explain_document
        from repro.xmlmodel import parse_document

        try:
            tree = parse_document(document, limits=self.config.limits)
            explanation = explain_document(kind, model, tree)
        except ParseError as exc:
            return self._document_error(DocumentError.from_exception(exc))
        return 200, {
            "valid": explanation.valid,
            "violations": [str(v) for v in explanation.violations],
            "elements": [
                {
                    "path": entry.typed_path,
                    "type": entry.type_name,
                    "rule": entry.rule_index,
                    "verdict": entry.verdict,
                    "reason": entry.reason,
                }
                for entry in explanation.elements
            ],
        }

    def _do_patch(self, compiled, xsd, document, params, remaining):
        from repro.engine.incremental import ValidatedDocument
        from repro.xmlmodel import parse_document, write_document
        from repro.xmlmodel.patch import parse_patch

        patches = params.get("patches")
        if patches is None and "patch" in params:
            patches = [params["patch"]]
        if (not isinstance(patches, list)
                or not all(isinstance(p, str) for p in patches)):
            return 400, {
                "error": "bad_request",
                "message": "'patches' must be a list of patch documents",
            }
        from repro.errors import PatchError

        deadline_at = time.monotonic() + remaining
        try:
            tree = parse_document(document, limits=self.config.limits)
            parsed = [parse_patch(text) for text in patches]
            handle = ValidatedDocument(tree, compiled)
            applied = 0
            for patch in parsed:
                patch.apply_incremental(handle)
                applied += len(patch)
                if time.monotonic() > deadline_at:
                    raise DeadlineExceeded(
                        f"request deadline exceeded after {applied} patch "
                        f"op(s)", deadline_seconds=remaining,
                    )
            report = handle.report()
        except PatchError as exc:
            # A malformed or mis-addressed patch is the client's error,
            # not a schema/service failure.
            return 422, {"error": "patch", "message": str(exc)}
        except (ParseError, SchemaError, DeadlineExceeded) as exc:
            return self._document_error(DocumentError.from_exception(exc))
        return 200, {
            "valid": report.valid,
            "violations": [str(v) for v in report.violations],
            "applied": applied,
            "document": write_document(handle.document),
        }

    def _document_error(self, error):
        status = _DOCUMENT_STATUS.get(error.kind, 500)
        payload = {"error": error.kind, "message": error.message}
        if error.line is not None:
            payload["line"] = error.line
        if error.column is not None:
            payload["column"] = error.column
        return status, payload
