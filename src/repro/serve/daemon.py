"""The asyncio front-end of ``repro serve``.

One event loop accepts connections (plain HTTP/1.1 over
:func:`asyncio.start_server`, keep-alive supported) and runs the cheap
per-request work inline: parse, route, admission.  Admitted requests
are handed to a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
running :meth:`~repro.serve.service.ValidationService.process` — the
compiled tables are immutable and the GIL releases around I/O, so
threads overlap request handling the same way
:func:`~repro.engine.validate_many` overlaps batch documents.

**Admission before work.**  Every POST route passes three gates in
order, each answering immediately:

1. *draining* → 503 (``Retry-After``): the process is going away.
2. *quarantine* → 503 with the cached ``BudgetExceeded`` stats: the
   schema's circuit is open; no worker, no recompile.
3. *occupancy* → 429 (``Retry-After``) when ``workers + queue_depth``
   requests are already admitted, or the tenant is at its cap.

**Graceful drain.**  SIGTERM (and SIGINT) triggers
:meth:`ServeDaemon.request_drain`: the listener closes, ``/readyz``
flips to 503, keep-alive responses switch to ``Connection: close``, and
the daemon waits up to ``drain_deadline`` seconds for every active
request to finish and flush its response bytes — zero admitted requests
are dropped unless the deadline forces it (counted in
``serve.drain.aborted``).  Metrics can be written to a file on exit for
post-mortem scraping.

**Request correlation.**  When observability is enabled
(``--access-log`` / ``--trace-log`` / ``--trace-requests``) every
request gets a process-unique request id and a 128-bit trace id — the
client's own if it sent a W3C ``traceparent`` header, a fresh one
otherwise.  Both come back as response headers (``X-Request-Id``,
``X-Trace-Id``, plus a ``traceparent`` naming the server's root span),
appear on the JSONL access-log line, ride the tracer baggage into every
compile/cache/validate span (across the worker-pool hop), land as the
``{trace_id}`` exemplar on the ``serve.request.latency`` histogram, and
key the tail sampler's retained traces served by ``GET /debug/traces``.
With observability off none of this machinery is constructed and the
request path costs what it did before.

Endpoints: ``POST /validate`` | ``/explain`` | ``/patch`` (JSON bodies:
``schema``, ``schema_kind``, ``document``, optional ``tenant``,
``deadline``, ``patches``), ``GET /healthz`` (process liveness),
``GET /readyz`` (503 while draining or when the breaker is globally
tripped), ``GET /metrics`` (Prometheus text), ``GET /debug/traces``
(tail-sampled traces, ``?limit=N&reason=error|slow|reservoir``).
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.observability import labeled, render_metrics, resolve_registry
from repro.observability.ringfile import DEFAULT_MAX_BYTES, RingFileWriter
from repro.observability.tracing import (
    TailSampler,
    Tracer,
    current_tracer,
    format_traceparent,
    installed_tracer,
    new_trace_id,
    parse_traceparent,
    span,
)
from repro.serve.accesslog import AccessLog
from repro.serve.admission import AdmissionController
from repro.serve.http import (
    MAX_HEADER_BYTES,
    HttpError,
    json_response,
    read_request,
    render_response,
)
from repro.serve.service import ValidationService, schema_key

_POST_ROUTES = {"/validate": "validate", "/explain": "explain",
                "/patch": "patch"}


class ServeDaemon:
    """One serving process: listener + admission + worker pool."""

    def __init__(self, config, registry=None, cache=None):
        self.config = config
        self._registry = resolve_registry(registry)
        self.service = ValidationService(config, registry=registry,
                                         cache=cache)
        self.admission = AdmissionController(
            workers=config.workers,
            queue_depth=config.queue_depth,
            tenant_inflight=config.tenant_inflight,
            registry=registry,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="repro-serve"
        )
        self._server = None
        self._draining = False
        self._active = 0
        self._connections = set()
        self._closed = None
        self._drain_task = None
        self.host = config.host
        self.port = config.port
        self.metrics_path = None
        # Request-correlation plumbing: constructed only when the config
        # asks for it, so the default daemon pays nothing per request.
        self._request_seq = itertools.count(1)
        self._request_prefix = os.urandom(3).hex()
        self.tail_sampler = None
        self.tracer = None
        self.access_log = None
        if config.observability_enabled:
            log_max = config.log_max_bytes or DEFAULT_MAX_BYTES
            ring = None
            if config.trace_log:
                ring = RingFileWriter(config.trace_log, max_bytes=log_max)
            self.tail_sampler = TailSampler(
                latency_threshold=config.tail_latency,
                reservoir=config.tail_reservoir,
                retain=config.tail_retain,
                ring=ring,
                registry=registry,
            )
            self.tracer = Tracer(sink=self.tail_sampler)
            if config.access_log:
                self.access_log = AccessLog(
                    config.access_log, max_bytes=log_max
                )

    def _next_request_id(self):
        """A process-unique request id (boot nonce + sequence)."""
        return f"{self._request_prefix}-{next(self._request_seq):06d}"

    # -- lifecycle --------------------------------------------------------
    async def start(self):
        """Bind and start accepting; resolves the actual port."""
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=MAX_HEADER_BYTES,
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break
        self._registry.gauge("serve.up").set(1)
        return self

    @property
    def draining(self):
        return self._draining

    def ready(self):
        """Readiness: accepting work and not globally tripped."""
        return not self._draining and not (
            self.service.breaker.tripped_globally()
        )

    def request_drain(self):
        """Begin graceful shutdown (idempotent; signal-handler safe)."""
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.ensure_future(self._drain())

    async def _drain(self):
        if self._draining:
            return
        self._draining = True
        self._registry.gauge("serve.draining").set(1)
        self._server.close()
        await self._server.wait_closed()
        deadline_at = time.monotonic() + self.config.drain_deadline
        while self._active > 0 and time.monotonic() < deadline_at:
            await asyncio.sleep(0.02)
        if self._active > 0:
            self._registry.counter("serve.drain.aborted").inc(self._active)
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        self._pool.shutdown(wait=False)
        self._registry.gauge("serve.up").set(0)
        self._flush_sinks()
        self._closed.set()

    def _flush_sinks(self):
        """Write the final metrics snapshot and close the log rings
        (trace/access sinks stream as they go; closing just releases
        their handles after the last line)."""
        if self.access_log is not None:
            with contextlib.suppress(OSError):
                self.access_log.close()
        if self.tail_sampler is not None and self.tail_sampler.ring:
            with contextlib.suppress(OSError):
                self.tail_sampler.ring.close()
        if self.metrics_path is None:
            return
        with contextlib.suppress(OSError):
            with open(self.metrics_path, "w", encoding="utf-8") as sink:
                sink.write(render_metrics(self._registry, "prometheus"))

    async def wait_closed(self):
        """Resolve once a drain has fully completed."""
        await self._closed.wait()

    # -- connection handling ----------------------------------------------
    async def _handle_connection(self, reader, writer):
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except HttpError as exc:
                    writer.write(json_response(
                        exc.status,
                        {"error": "http", "message": str(exc)},
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive and not self._draining
                self._active += 1
                access = {}
                try:
                    result = await self._dispatch(request, access)
                    keep_alive = keep_alive and not self._draining
                    if isinstance(result, bytes):
                        # /metrics: pre-rendered exposition text.
                        raw = result
                        access.setdefault("status", 200)
                    else:
                        status, body, headers = result
                        access.setdefault("status", status)
                        raw = json_response(
                            status, body, keep_alive=keep_alive,
                            extra_headers=headers,
                        )
                    writer.write(raw)
                    await writer.drain()
                    if self.access_log is not None:
                        access["bytes_in"] = len(request.body)
                        access["bytes_out"] = len(raw)
                        access.setdefault("route", request.path)
                        self.access_log.log(access)
                finally:
                    self._active -= 1
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _dispatch(self, request, access):
        """Route one request; returns ``(status, payload, headers)``.

        ``access`` is this request's access-log record in the making —
        handlers fill in correlation fields as they learn them; the
        connection loop stamps byte counts and writes the line.
        """
        method, path = request.method, request.path
        if method == "GET":
            if path == "/healthz":
                return 200, {"status": "ok"}, ()
            if path == "/readyz":
                if self.ready():
                    return 200, {"ready": True}, ()
                reason = ("draining" if self._draining
                          else "breaker_global_trip")
                return 503, {"ready": False, "reason": reason}, (
                    ("Retry-After", _retry_text(self.config.retry_after)),
                )
            if path == "/metrics":
                # Not JSON: hand back pre-rendered exposition text.
                return self._metrics_response(request)
            if path == "/debug/traces":
                return self._traces_response(request)
            if path in _POST_ROUTES:
                return 405, {
                    "error": "method_not_allowed", "message": method,
                }, ()
            return 404, {"error": "not_found", "message": path}, ()
        route = _POST_ROUTES.get(path)
        if route is None:
            return 404, {"error": "not_found", "message": path}, ()
        if method != "POST":
            return 405, {"error": "method_not_allowed", "message": method}, ()
        return await self._handle_post(route, request, access)

    def _metrics_response(self, request):
        text = render_metrics(self._registry, "prometheus")
        keep_alive = request.keep_alive and not self._draining
        raw = render_response(
            200, text, content_type="text/plain; version=0.0.4",
            keep_alive=keep_alive,
        )
        return raw

    def _traces_response(self, request):
        """``GET /debug/traces`` — the tail sampler's retained traces."""
        sampler = self.tail_sampler
        if sampler is None:
            return 200, {"enabled": False, "traces": []}, ()
        params = request.query_params()
        try:
            limit = max(1, int(params.get("limit", 32)))
        except ValueError:
            limit = 32
        reason = params.get("reason") or None
        traces = sampler.retained()
        if reason is not None:
            traces = [t for t in traces if t.get("reason") == reason]
        return 200, {"enabled": True, "traces": traces[:limit]}, ()

    async def _handle_post(self, route, request, access):
        config = self.config
        registry = self._registry
        try:
            params = request.json()
        except HttpError as exc:
            access["status"] = exc.status
            return exc.status, {"error": "http", "message": str(exc)}, ()
        tenant = request.headers.get("x-tenant") or params.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            tenant = "anonymous"

        # Correlation ids: honor an incoming W3C traceparent; mint a
        # fresh trace id only when tracing is on (so the disabled path
        # does no random I/O).  The ids come back as response headers on
        # every outcome, shed or served.
        tracer = self.tracer if self.tracer is not None else current_tracer()
        incoming = parse_traceparent(request.headers.get("traceparent"))
        if incoming is not None:
            trace_id = incoming[0]
        elif tracer is not None:
            trace_id = new_trace_id()
        else:
            trace_id = None
        request_id = self._next_request_id() if tracer is not None else None
        corr = []
        if request_id is not None:
            corr.append(("X-Request-Id", request_id))
        if trace_id is not None:
            corr.append(("X-Trace-Id", trace_id))
        corr = tuple(corr)
        access.update(
            request_id=request_id, trace_id=trace_id, tenant=tenant,
            route=route,
        )

        retry_header = ("Retry-After", _retry_text(config.retry_after))
        if self._draining:
            registry.counter("serve.rejected.draining").inc()
            access.update(status=503, reason="draining")
            return 503, {"error": "draining"}, (retry_header,) + corr

        # Quarantine check before admission: an open circuit answers
        # from cached stats without consuming a queue slot or worker.
        kind = params.get("schema_kind", "xsd")
        text = params.get("schema")
        key = schema_key(kind, text) if isinstance(text, str) else None
        schema_hash = key[:12] if key is not None else None
        access["schema_hash"] = schema_hash
        if key is not None:
            blocked = self.service.quarantined(key)
            if blocked is not None:
                retry_after, stats = blocked
                access.update(status=503, reason="quarantined")
                return 503, {
                    "error": "quarantined",
                    "message": "schema quarantined after repeated "
                               "budget exhaustion",
                    "retry_after": retry_after,
                    "stats": stats,
                }, (("Retry-After", _retry_text(retry_after)),) + corr

        reason = self.admission.try_admit(tenant)
        if reason is not None:
            access.update(status=429, reason=reason)
            return 429, {
                "error": reason,
                "retry_after": config.retry_after,
            }, (retry_header,) + corr

        deadline = config.clamp_deadline(params.get("deadline"))
        deadline_at = time.monotonic() + deadline
        started = time.perf_counter_ns()
        loop = asyncio.get_running_loop()
        status = 500
        timing = {}
        baggage = None
        if tracer is not None:
            baggage = {"tenant": tenant}
            if request_id is not None:
                baggage["request_id"] = request_id
            if schema_hash is not None:
                baggage["schema_hash"] = schema_hash
        try:
            if tracer is not None:
                trace = tracer.span("serve.request", trace_id=trace_id,
                                    **baggage)
            else:
                trace = span("serve.request")
            with trace:
                trace.set_attribute("route", route)
                parent = trace if tracer is not None else None
                if tracer is not None and trace_id is not None:
                    corr += ((
                        "traceparent",
                        format_traceparent(trace_id, trace.span_id),
                    ),)

                def work():
                    # Contextvars do not cross pool threads: re-install
                    # the caller's tracer (and baggage) so worker spans
                    # join the tree carrying the correlation fields.
                    timing["worker_start"] = time.perf_counter_ns()
                    try:
                        if tracer is None:
                            return self.service.process(
                                route, params, tenant, deadline_at
                            )
                        with installed_tracer(tracer, parent,
                                              baggage=baggage):
                            return self.service.process(
                                route, params, tenant, deadline_at
                            )
                    finally:
                        timing["worker_end"] = time.perf_counter_ns()

                status, payload = await loop.run_in_executor(
                    self._pool, work
                )
                trace.set_attribute("status", status)
                if status >= 500:
                    trace.set_status("error")
        except Exception as exc:  # a service bug, not a request failure
            registry.counter("serve.errors.internal").inc()
            status, payload = 500, {
                "error": "internal",
                "message": f"{type(exc).__name__}: {exc}",
            }
        finally:
            self.admission.release(tenant)
            elapsed = time.perf_counter_ns() - started
            exemplar = {"trace_id": trace_id} if trace_id else None
            registry.histogram(
                "serve.request.latency",
                help="end-to-end request wall time, admission to "
                     "response, nanoseconds",
            ).observe(elapsed, exemplar=exemplar)
            registry.counter(
                "serve.requests", help="requests admitted to a worker"
            ).inc()
            registry.counter(
                labeled("serve.requests.by", tenant=tenant,
                        code=str(status)),
                help="requests admitted to a worker, by tenant and "
                     "status code",
            ).inc()
            access["status"] = status
            worker_start = timing.get("worker_start")
            if worker_start is not None:
                queue_wait = worker_start - started
                worker_ns = timing.get("worker_end", worker_start)
                worker_ns -= worker_start
                registry.histogram(
                    "serve.queue.wait_ns",
                    help="admitted-to-executing wait for a worker "
                         "thread, nanoseconds",
                ).observe(queue_wait)
                access["queue_wait_ms"] = round(queue_wait / 1e6, 3)
                access["worker_ms"] = round(worker_ns / 1e6, 3)
        headers = ()
        if status in (429, 503):
            headers = ((
                "Retry-After",
                _retry_text(payload.get("retry_after",
                                        config.retry_after)),
            ),)
        return status, payload, headers + corr


def _retry_text(seconds):
    """``Retry-After`` is integer seconds; round up, at least 1."""
    return str(max(1, int(seconds + 0.999)))


async def _amain(config, registry=None, cache=None, announce=None,
                 metrics_path=None, install_signals=True):
    daemon = ServeDaemon(config, registry=registry, cache=cache)
    daemon.metrics_path = metrics_path
    await daemon.start()
    if announce is not None:
        announce(daemon)
    if install_signals:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, daemon.request_drain)
    await daemon.wait_closed()
    return 0


def run_server(config, registry=None, cache=None, metrics_path=None):
    """Run the daemon until SIGTERM/SIGINT drains it; returns exit code.

    Announces ``serving on http://host:port`` on stdout once bound (with
    ``port=0`` this is the only way to learn the chosen port).
    """
    def announce(daemon):
        print(f"serving on http://{daemon.host}:{daemon.port}", flush=True)

    return asyncio.run(_amain(
        config, registry=registry, cache=cache, announce=announce,
        metrics_path=metrics_path,
    ))


class ServerHandle:
    """A daemon hosted on a background thread (tests, benchmarks, smoke).

    Attributes:
        daemon: the :class:`ServeDaemon` (its loop runs on the thread).
        port: the bound port.
    """

    def __init__(self):
        self.daemon = None
        self.port = None
        self.loop = None
        self.thread = None
        self._exit = None

    @property
    def base_url(self):
        return f"http://127.0.0.1:{self.port}"

    def request_drain(self):
        """Trigger graceful drain from any thread."""
        self.loop.call_soon_threadsafe(self.daemon.request_drain)

    def stop(self, timeout=10.0):
        """Drain and join; returns the daemon's exit code (0)."""
        self.request_drain()
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("serve daemon failed to drain in time")
        return self._exit

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        if self.thread.is_alive():
            self.stop()
        return False


def start_in_thread(config, registry=None, cache=None, timeout=10.0):
    """Start a daemon on a fresh thread; returns a :class:`ServerHandle`.

    The thread runs its own event loop; SIGTERM handlers are *not*
    installed (signals belong to the main thread) — use
    :meth:`ServerHandle.stop` or :meth:`ServerHandle.request_drain`.
    """
    handle = ServerHandle()
    started = threading.Event()

    def announce(daemon):
        handle.daemon = daemon
        handle.port = daemon.port
        handle.loop = asyncio.get_running_loop()
        started.set()

    def run():
        handle._exit = asyncio.run(_amain(
            config, registry=registry, cache=cache, announce=announce,
            install_signals=False,
        ))

    handle.thread = threading.Thread(
        target=run, name="repro-serve-daemon", daemon=True
    )
    handle.thread.start()
    if not started.wait(timeout):
        raise RuntimeError("serve daemon failed to start in time")
    return handle
