"""``repro top`` — a live text dashboard over the daemon's ``/metrics``.

No curses, no dependencies: the dashboard polls the Prometheus text
endpoint, diffs consecutive scrapes, and redraws a handful of lines
with ANSI escapes (``--once`` prints a single frame with no escapes, so
tests and pipelines can consume it).  Everything shown is derived from
the exposition text itself — the parser here is the minimal subset the
daemon's own exporter emits (``name{labels} value`` samples; exemplar
clauses after ``#`` are ignored) — so ``repro top`` works against any
scrape of this service, live or from a ``--metrics-file`` snapshot.

Derived figures per refresh window:

* request rate and shed rate (deltas of ``serve_requests`` /
  ``serve_shed`` over the window);
* p50/p95/p99 request latency from the ``serve_request_latency``
  bucket deltas (interpolated inside the winning power-of-two bucket —
  the same estimator as :meth:`~repro.observability.metrics.Histogram.
  percentile`, applied to the window);
* breaker and queue state from the gauges;
* top tenants by windowed request share (``serve_requests_by``);
* tail-sampler keep/drop counts when tracing is on.
"""

from __future__ import annotations

import re
import time
import urllib.request

_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)"
)
_LABEL = re.compile(r'([a-zA-Z0-9_]+)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text):
    """Parse exposition text into ``{(name, labels-tuple): float}``.

    ``labels-tuple`` is a sorted tuple of ``(key, value)`` pairs; comment
    lines and exemplar clauses are ignored; unparseable sample values
    (``NaN`` stays, anything else odd is skipped) never raise.
    """
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            continue
        name, label_block, value_text = match.groups()
        labels = ()
        if label_block:
            labels = tuple(sorted(
                (key, value.replace('\\"', '"').replace("\\\\", "\\")
                           .replace("\\n", "\n"))
                for key, value in _LABEL.findall(label_block)
            ))
        try:
            value = float(value_text)
        except ValueError:
            continue
        samples[(name, labels)] = value
    return samples


def scrape(url, timeout=5.0):
    """Fetch and parse one ``/metrics`` scrape."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        text = response.read().decode("utf-8", "replace")
    return parse_prometheus_text(text)


def _value(samples, name, default=0.0):
    return samples.get((name, ()), default)


def _series(samples, name):
    """All ``(labels-dict, value)`` samples of one family."""
    found = []
    for (sample_name, labels), value in samples.items():
        if sample_name == name:
            found.append((dict(labels), value))
    return found


def _bucket_bounds(samples, name):
    """Sorted ``[(upper-bound, cumulative-count), ...]`` for a histogram."""
    bounds = []
    for labels, value in _series(samples, name + "_bucket"):
        le = labels.get("le")
        if le is None:
            continue
        bound = float("inf") if le == "+Inf" else float(le)
        bounds.append((bound, value))
    bounds.sort(key=lambda pair: pair[0])
    return bounds


def histogram_quantile(deltas, q):
    """Interpolated ``q``-quantile over windowed bucket deltas.

    ``deltas`` is ``[(upper-bound, count-in-window), ...]`` sorted by
    bound; returns 0.0 for an empty window.  Mirrors
    :meth:`~repro.observability.metrics.Histogram.percentile` — walk to
    the bucket holding the target rank, interpolate linearly inside it.
    """
    total = sum(count for __, count in deltas)
    if total <= 0:
        return 0.0
    target = q * total
    cumulative = 0.0
    low = 0.0
    for bound, count in deltas:
        previous = cumulative
        cumulative += count
        if cumulative >= target and count > 0:
            if bound == float("inf"):
                return low
            fraction = (max(target, previous) - previous) / count
            return low + fraction * (bound - low)
        if bound != float("inf"):
            low = bound
    return low


def _window_buckets(current, previous, name):
    """Per-bucket deltas between two scrapes (falls back to totals)."""
    now = _bucket_bounds(current, name)
    if previous is None:
        return now
    before = dict(_bucket_bounds(previous, name))
    return [
        (bound, max(0.0, count - before.get(bound, 0.0)))
        for bound, count in now
    ]


def _delta(current, previous, name):
    value = _value(current, name)
    if previous is None:
        return value
    return max(0.0, value - _value(previous, name))


def _tenant_shares(current, previous):
    """Windowed per-tenant request counts from ``serve_requests_by``."""
    def totals(samples):
        counts = {}
        if samples is None:
            return counts
        for labels, value in _series(samples, "serve_requests_by"):
            tenant = labels.get("tenant", "?")
            counts[tenant] = counts.get(tenant, 0.0) + value
        return counts

    now, before = totals(current), totals(previous)
    window = {
        tenant: max(0.0, count - before.get(tenant, 0.0))
        for tenant, count in now.items()
    }
    return {t: c for t, c in window.items() if c > 0} or now


def _ms(nanoseconds):
    return nanoseconds / 1e6


def render_frame(current, previous, elapsed, url):
    """Render one dashboard frame as a list of text lines."""
    requests = _delta(current, previous, "serve_requests")
    shed = _delta(current, previous, "serve_shed")
    offered = requests + shed
    rps = requests / elapsed if elapsed > 0 else 0.0
    shed_rate = (shed / offered * 100.0) if offered else 0.0
    buckets = _window_buckets(current, previous, "serve_request_latency")
    p50 = _ms(histogram_quantile(buckets, 0.50))
    p95 = _ms(histogram_quantile(buckets, 0.95))
    p99 = _ms(histogram_quantile(buckets, 0.99))
    inflight = int(_value(current, "serve_inflight"))
    queued = int(_value(current, "serve_queue_depth"))
    breaker_open = int(_value(current, "serve_breaker_open"))
    trips = int(_value(current, "serve_breaker_trips"))
    draining = _value(current, "serve_draining")

    lines = [
        f"repro top — {url} — window {elapsed:.1f}s"
        + ("  [DRAINING]" if draining else ""),
        f"requests  {rps:8.1f} rps   shed {shed_rate:5.1f}%   "
        f"inflight {inflight} (queued {queued})",
        f"latency   p50 {p50:8.2f} ms   p95 {p95:8.2f} ms   "
        f"p99 {p99:8.2f} ms   (n={int(sum(c for _, c in buckets))})",
        f"breaker   open {breaker_open}   trips {trips}",
    ]

    kept = _value(current, "trace_tail_kept")
    dropped = _value(current, "trace_tail_dropped")
    if kept or dropped:
        by = {
            reason: int(_value(current, f"trace_tail_kept_{reason}"))
            for reason in ("error", "slow", "reservoir")
        }
        detail = ", ".join(
            f"{reason} {count}" for reason, count in by.items() if count
        )
        lines.append(
            f"traces    kept {int(kept)}"
            + (f" ({detail})" if detail else "")
            + f"   dropped {int(dropped)}"
        )

    shares = _tenant_shares(current, previous)
    if shares:
        total = sum(shares.values()) or 1.0
        top = sorted(shares.items(), key=lambda kv: -kv[1])[:5]
        lines.append("tenants   " + "   ".join(
            f"{tenant} {count / total * 100.0:.0f}%"
            for tenant, count in top
        ))
    return lines


def run_top(url, interval=2.0, iterations=None, out=None):
    """Poll ``url`` and redraw the dashboard until interrupted.

    ``iterations`` bounds the number of frames (``--once`` passes 1 and
    suppresses the ANSI clear); returns the process exit code.
    """
    import sys

    out = out if out is not None else sys.stdout
    if not url.startswith(("http://", "https://")):
        url = "http://" + url
    if not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    previous = None
    previous_at = None
    frame = 0
    try:
        while True:
            try:
                current = scrape(url)
            except OSError as exc:
                print(f"error: cannot scrape {url}: {exc}",
                      file=sys.stderr)
                return 2
            now = time.monotonic()
            elapsed = (now - previous_at) if previous_at is not None else (
                interval
            )
            lines = render_frame(current, previous, elapsed, url)
            if iterations != 1 and frame > 0:
                out.write("\x1b[H\x1b[2J")  # home + clear
            out.write("\n".join(lines) + "\n")
            out.flush()
            previous, previous_at = current, now
            frame += 1
            if iterations is not None and frame >= iterations:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def fetch_traces(target, limit=None, reason=None):
    """Load retained traces from a daemon URL or a trace-ring file.

    ``target`` starting with ``http`` hits ``GET /debug/traces``;
    anything else is read as a retained-trace JSONL ring
    (:func:`~repro.observability.ringfile.read_ring`).  Newest first.
    """
    import json

    if target.startswith(("http://", "https://")):
        url = target.rstrip("/")
        if not url.endswith("/debug/traces"):
            url += "/debug/traces"
        query = []
        if limit is not None:
            query.append(f"limit={int(limit)}")
        if reason is not None:
            query.append(f"reason={reason}")
        if query:
            url += "?" + "&".join(query)
        with urllib.request.urlopen(url, timeout=5.0) as response:
            payload = json.loads(response.read().decode("utf-8"))
        return payload.get("traces", [])
    from repro.observability.ringfile import read_ring

    records = [
        record for record in read_ring(target)
        if isinstance(record, dict) and "trace_id" in record
    ]
    records.reverse()
    if reason is not None:
        records = [r for r in records if r.get("reason") == reason]
    if limit is not None:
        records = records[:max(0, int(limit))]
    return records


def format_trace(record, verbose=False):
    """Pretty-print one retained trace record as text lines."""
    root = record.get("root", {})
    attributes = root.get("attributes", {})
    line = (
        f"{record.get('trace_id', '?')}  {record.get('reason', '?'):9s}"
        f"  {record.get('duration_ms', 0.0):9.2f} ms"
        f"  status={attributes.get('status', '?')}"
        f"  route={attributes.get('route', '?')}"
        f"  tenant={attributes.get('tenant', '?')}"
    )
    schema_hash = attributes.get("schema_hash")
    if schema_hash:
        line += f"  schema={schema_hash}"
    lines = [line]
    if verbose:
        spans = sorted(
            record.get("spans", []),
            key=lambda s: s.get("start_ns", 0),
        )
        for entry in spans:
            duration = entry.get("duration_ns") or 0
            indent = "    " if entry.get("parent_id") is not None else "  "
            status = entry.get("status", "ok")
            flag = "" if status == "ok" else f"  [{status}]"
            lines.append(
                f"{indent}{entry.get('name', '?'):28s}"
                f" {duration / 1e6:9.3f} ms{flag}"
            )
    return lines
