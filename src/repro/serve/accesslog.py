"""Structured JSONL access logs for the serve daemon.

One request, one line — a flat JSON object the whole toolchain can
consume (``jq``, the smoke tests, a log shipper).  The fields mirror
the request-correlation layer, so a line joins against the retained
trace (``trace_id``), the metric exemplar (same id), and the client's
own logs (``request_id`` echoes the ``X-Request-Id`` response header):

``ts``
    Unix epoch seconds at the moment the response bytes were written.
``request_id`` / ``trace_id``
    The correlation ids (``trace_id`` absent when tracing is off and
    the client sent no ``traceparent``).
``tenant`` / ``route`` / ``schema_hash``
    Who, what, and against which schema (``schema_hash`` is the
    12-hex-digit prefix of the breaker key; absent on GET routes).
``status`` / ``reason``
    The HTTP status and, for refused requests, the gate that refused
    (``queue_full`` / ``tenant_budget`` / ``draining`` /
    ``quarantined``).
``queue_wait_ms`` / ``worker_ms``
    Time spent waiting for a worker thread and executing on it (absent
    for requests refused before admission).
``bytes_in`` / ``bytes_out``
    Request body and rendered response sizes.

The file is a size-capped ring (:class:`~repro.observability.ringfile.
RingFileWriter`), so a busy daemon cannot fill the volume; ``None``
fields are dropped from each record rather than serialized as null.
"""

from __future__ import annotations

import time

from repro.observability.ringfile import (
    DEFAULT_MAX_BYTES,
    RingFileWriter,
    read_ring,
)


class AccessLog:
    """A JSONL access log over a rotating ring file (thread-safe)."""

    def __init__(self, path, max_bytes=DEFAULT_MAX_BYTES, backups=1):
        self._ring = RingFileWriter(
            path, max_bytes=max_bytes, backups=backups
        )
        self.path = self._ring.path

    def log(self, record):
        """Write one access record (``None`` values dropped, ts stamped)."""
        line = {
            key: value for key, value in record.items() if value is not None
        }
        line.setdefault("ts", time.time())
        self._ring.write(line)

    def flush(self):
        self._ring.flush()

    def close(self):
        self._ring.close()

    def __repr__(self):
        return f"AccessLog({self.path!r})"


def read_access_log(path):
    """Yield the parsed records of an access-log ring, oldest first."""
    return read_ring(path)
