"""Admission control for the serve daemon: load shedding and quarantine.

Two independent gates stand between a request and a worker thread:

* :class:`AdmissionController` — bounded occupancy accounting.  The
  service may hold at most ``workers + queue_depth`` admitted requests
  (executing + waiting for a thread), and at most ``tenant_inflight`` of
  them per tenant, so one tenant flooding the queue cannot starve the
  rest.  An over-capacity request is refused *immediately* with a shed
  reason (the daemon turns it into ``429 Retry-After``) — a saturated
  service answers fast instead of letting latency grow without bound.

* :class:`CircuitBreaker` — per-schema quarantine.  Theorem 8/9 schemas
  make compilation exhaust any :class:`~repro.observability.
  ResourceBudget`; recompiling such a schema on every request would let
  a single tenant burn a worker for the full budget allowance each time.
  After ``threshold`` consecutive budget exhaustions a schema's circuit
  opens: requests fail fast with the *cached* ``BudgetExceeded`` stats,
  no recompile.  After ``cooldown`` seconds the circuit goes half-open
  and admits exactly one probe; success closes it, another exhaustion
  re-opens it for a fresh cooldown.  When ``global_limit`` circuits are
  simultaneously open the breaker reports a global trip and the daemon
  flips ``/readyz`` to not-ready, telling the load balancer to back off.

Both classes are thread-safe (checked on the event loop, recorded from
worker threads) and feed the shared metrics registry:
``serve.inflight`` / ``serve.queue.depth`` gauges, ``serve.shed``
counters (per reason and tenant), and ``serve.breaker.*``
trip/fast-fail counters with per-schema labels.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.observability import labeled, resolve_registry


class AdmissionController:
    """Bounded occupancy: total and per-tenant inflight caps.

    Args:
        workers: worker-thread count (executing slots).
        queue_depth: additional admitted-but-waiting slots.
        tenant_inflight: per-tenant admitted cap (``None`` = no
            per-tenant cap, only the global bound applies).
        registry: metrics registry override (tests).
    """

    __slots__ = ("workers", "queue_depth", "tenant_inflight",
                 "_inflight", "_tenants", "_lock", "_registry")

    def __init__(self, workers, queue_depth, tenant_inflight=None,
                 registry=None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_depth < 0:
            raise ValueError(
                f"queue_depth must be >= 0, got {queue_depth}"
            )
        if tenant_inflight is not None and tenant_inflight < 1:
            raise ValueError(
                f"tenant_inflight must be >= 1, got {tenant_inflight}"
            )
        self.workers = workers
        self.queue_depth = queue_depth
        self.tenant_inflight = tenant_inflight
        self._inflight = 0
        self._tenants = {}
        self._lock = threading.Lock()
        self._registry = resolve_registry(registry)

    @property
    def capacity(self):
        """Most requests admitted at once (executing + queued)."""
        return self.workers + self.queue_depth

    @property
    def inflight(self):
        with self._lock:
            return self._inflight

    def try_admit(self, tenant):
        """Admit one request for ``tenant``; the shed reason, or ``None``.

        ``None`` means admitted — the caller *must* pair it with
        :meth:`release`.  Otherwise the string names the gate that
        refused (``"queue_full"`` / ``"tenant_budget"``) and nothing was
        accounted.
        """
        registry = self._registry
        with self._lock:
            if self._inflight >= self.capacity:
                reason = "queue_full"
            elif (self.tenant_inflight is not None
                    and self._tenants.get(tenant, 0) >= self.tenant_inflight):
                reason = "tenant_budget"
            else:
                self._inflight += 1
                self._tenants[tenant] = self._tenants.get(tenant, 0) + 1
                inflight = self._inflight
                registry.gauge(
                    "serve.inflight",
                    help="admitted requests (executing + queued)",
                ).set(inflight)
                registry.gauge(
                    "serve.queue.depth",
                    help="admitted requests waiting for a worker thread",
                ).set(max(0, inflight - self.workers))
                return None
        registry.counter(
            "serve.shed", help="requests refused by admission control"
        ).inc()
        registry.counter(
            labeled("serve.shed.by", reason=reason, tenant=tenant),
            help="requests refused by admission control, by gate and tenant",
        ).inc()
        return reason

    def release(self, tenant):
        """Return one admitted slot (request finished, any outcome)."""
        with self._lock:
            self._inflight -= 1
            remaining = self._tenants.get(tenant, 0) - 1
            if remaining <= 0:
                self._tenants.pop(tenant, None)
            else:
                self._tenants[tenant] = remaining
            inflight = self._inflight
        self._registry.gauge("serve.inflight").set(inflight)
        self._registry.gauge("serve.queue.depth").set(
            max(0, inflight - self.workers)
        )

    def __repr__(self):
        return (
            f"AdmissionController(workers={self.workers}, "
            f"queue_depth={self.queue_depth}, "
            f"tenant_inflight={self.tenant_inflight}, "
            f"inflight={self.inflight})"
        )


class _Circuit:
    """Per-key breaker state (guarded by the breaker's lock)."""

    __slots__ = ("failures", "opened_at", "probing", "stats")

    def __init__(self):
        self.failures = 0
        self.opened_at = None
        self.probing = False
        self.stats = None


class CircuitBreaker:
    """Per-schema quarantine with half-open probes and a global trip.

    Args:
        threshold: consecutive budget exhaustions that open a circuit.
        cooldown: seconds an open circuit blocks before half-opening.
        global_limit: simultaneously open circuits that constitute a
            global trip (``None`` disables the global signal).
        clock: monotonic-seconds source (injectable for tests).
        maxsize: most circuits tracked; least-recently-touched entries
            are dropped beyond it (schema churn cannot grow the map
            without bound — a dropped open circuit simply starts over).
        registry: metrics registry override (tests).
    """

    __slots__ = ("threshold", "cooldown", "global_limit", "maxsize",
                 "_clock", "_circuits", "_open", "_lock", "_registry")

    def __init__(self, threshold=3, cooldown=30.0, global_limit=None,
                 clock=time.monotonic, maxsize=1024, registry=None):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if global_limit is not None and global_limit < 1:
            raise ValueError(
                f"global_limit must be >= 1, got {global_limit}"
            )
        self.threshold = threshold
        self.cooldown = cooldown
        self.global_limit = global_limit
        self.maxsize = maxsize
        self._clock = clock
        self._circuits = OrderedDict()
        self._open = 0
        self._lock = threading.Lock()
        self._registry = resolve_registry(registry)

    @property
    def open_count(self):
        """Circuits currently open (half-open probes still count)."""
        with self._lock:
            return self._open

    def tripped_globally(self):
        """True when open circuits have reached ``global_limit``."""
        if self.global_limit is None:
            return False
        return self.open_count >= self.global_limit

    def check(self, key):
        """May a request for ``key`` proceed?

        Returns ``None`` to proceed, or ``(retry_after, stats)`` when
        the circuit is open — ``stats`` being the cached partial-progress
        figures from the exhaustion that opened it, so the refusal can
        explain itself without recompiling anything.

        An open circuit past its cooldown admits exactly one half-open
        probe (the first caller to ask); concurrent requests for the
        same key stay blocked until the probe reports back.
        """
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.opened_at is None:
                return None
            self._circuits.move_to_end(key)
            elapsed = self._clock() - circuit.opened_at
            if elapsed >= self.cooldown and not circuit.probing:
                circuit.probing = True
                return None
            retry_after = max(self.cooldown - elapsed, 0.0)
            stats = dict(circuit.stats or {})
        self._registry.counter(
            "serve.breaker.fastfail",
            help="requests answered from a quarantined schema's "
                 "cached stats",
        ).inc()
        return retry_after, stats

    def record_failure(self, key, stats=None):
        """One budget exhaustion for ``key``; returns True if now open."""
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None:
                circuit = _Circuit()
                self._circuits[key] = circuit
                while len(self._circuits) > self.maxsize:
                    __, dropped = self._circuits.popitem(last=False)
                    if dropped.opened_at is not None:
                        self._open -= 1
            self._circuits.move_to_end(key)
            circuit.failures += 1
            circuit.stats = dict(stats or {})
            was_open = circuit.opened_at is not None
            opens = circuit.probing or (
                not was_open and circuit.failures >= self.threshold
            )
            if opens:
                circuit.opened_at = self._clock()
                circuit.probing = False
                if not was_open:
                    self._open += 1
            now_open = circuit.opened_at is not None
            open_count = self._open
        if opens:
            self._registry.counter(
                "serve.breaker.trips",
                help="circuit-breaker opens (schema quarantined)",
            ).inc()
            self._registry.counter(
                labeled("serve.breaker.trips.by", schema=key[:12]),
                help="circuit-breaker opens by schema fingerprint",
            ).inc()
        self._registry.gauge(
            "serve.breaker.open", help="schema circuits currently open"
        ).set(open_count)
        return now_open

    def record_success(self, key):
        """A compile for ``key`` succeeded: close and forget the circuit."""
        with self._lock:
            circuit = self._circuits.pop(key, None)
            if circuit is not None and circuit.opened_at is not None:
                self._open -= 1
            open_count = self._open
        self._registry.gauge("serve.breaker.open").set(open_count)

    def __repr__(self):
        return (
            f"CircuitBreaker(threshold={self.threshold}, "
            f"cooldown={self.cooldown}, open={self.open_count})"
        )
