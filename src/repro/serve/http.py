"""Minimal HTTP/1.1 on asyncio streams — no dependencies, no framework.

The serve daemon speaks just enough HTTP for validation traffic: request
line + headers + ``Content-Length`` body in, status line + headers +
body out, with keep-alive.  Chunked transfer encoding, trailers, and
multipart are deliberately out of scope — a validation request is one
JSON document, and a client that needs streaming should send documents
as separate requests.

Hardening mirrors the parser-side posture (:mod:`repro.resilience`):
the header block is bounded by the stream reader's buffer limit
(oversized headers are refused with 431, not buffered), the body is
bounded by an explicit byte cap (413), and a malformed request yields a
structured :class:`HttpError` that the connection loop turns into a
4xx response instead of a traceback.
"""

from __future__ import annotations

import asyncio
import json

# How much slack the stream-reader limit leaves above the header block
# itself (request line + headers must fit in one reader buffer).
MAX_HEADER_BYTES = 32 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request the server refuses at the protocol layer.

    Attributes:
        status: the HTTP status code to answer with.
    """

    def __init__(self, status, message):
        self.status = status
        super().__init__(message)


class HttpRequest:
    """One parsed request: method, path, query, lowercased headers, body."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method, path, headers, body, query=""):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    @property
    def keep_alive(self):
        """HTTP/1.1 default: persistent unless ``Connection: close``."""
        return self.headers.get("connection", "").lower() != "close"

    def query_params(self):
        """The query string as a flat dict (last value wins, no decoding
        beyond ``+``/percent-free keys — debug endpoints only)."""
        params = {}
        if self.query:
            for pair in self.query.split("&"):
                key, __, value = pair.partition("=")
                if key:
                    params[key] = value
        return params

    def json(self):
        """The body decoded as a JSON object (:class:`HttpError` 400)."""
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload

    def __repr__(self):
        return f"HttpRequest({self.method} {self.path}, {len(self.body)}B)"


async def read_request(reader, max_body_bytes):
    """Read one request from ``reader``; ``None`` on clean end-of-stream.

    Raises :class:`HttpError` on a malformed request line, an oversized
    header block (431), or a body larger than ``max_body_bytes`` (413).
    A connection that closes mid-request (rather than between requests)
    is treated as a clean close too — the client gave up; there is
    nobody left to answer.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        return None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request header block too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    path, __, query = target.partition("?")

    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length < 0:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length > max_body_bytes:
        raise HttpError(
            413,
            f"request body too large ({length} bytes > {max_body_bytes})",
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None
    return HttpRequest(method, path, headers, body, query=query)


def render_response(status, body, content_type="application/json",
                    keep_alive=True, extra_headers=()):
    """Serialize one response to bytes (body may be ``str`` or ``bytes``)."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(status, payload, keep_alive=True, extra_headers=()):
    """A JSON-encoded :func:`render_response`."""
    return render_response(
        status,
        json.dumps(payload, sort_keys=True) + "\n",
        keep_alive=keep_alive,
        extra_headers=extra_headers,
    )
