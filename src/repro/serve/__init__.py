"""Validation-as-a-service: the ``repro serve`` daemon.

An asyncio HTTP/1.1 front-end (no dependencies beyond the standard
library) that puts the engine's serving substrate — the two-tier
:class:`~repro.engine.cache.SchemaCache`, per-request
:class:`~repro.resilience.ParserLimits` and deadlines,
:class:`~repro.observability.ResourceBudget` compile allowances, the
metrics registry and tracing spans — in front of real concurrent
traffic, with the robustness layer a service needs on top:

* :mod:`repro.serve.admission` — bounded occupancy with immediate load
  shedding (429 + ``Retry-After``) and a per-schema circuit breaker
  that quarantines budget-exhausting (Theorem 8/9) schemas;
* :mod:`repro.serve.service` — worker-side request processing reusing
  :func:`~repro.engine.validate_many`'s fault isolation per document;
* :mod:`repro.serve.daemon` — the event loop, ``/healthz`` /
  ``/readyz`` / ``/metrics`` endpoints, and SIGTERM graceful drain;
* :mod:`repro.serve.http` — a minimal hardened HTTP/1.1 reader/writer.
"""

from repro.serve.admission import AdmissionController, CircuitBreaker
from repro.serve.daemon import (
    ServeDaemon,
    ServerHandle,
    run_server,
    start_in_thread,
)
from repro.serve.service import (
    QuarantinedSchema,
    ServeConfig,
    ValidationService,
    schema_key,
)

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "QuarantinedSchema",
    "ServeConfig",
    "ServeDaemon",
    "ServerHandle",
    "ValidationService",
    "run_server",
    "schema_key",
    "start_in_thread",
]
