"""Hardened parsing limits for untrusted XML input.

The serving posture (ROADMAP north star: heavy traffic from millions of
users) means malformed and hostile documents are the common case.  The
parser must therefore bound every dimension an attacker controls: input
size, nesting depth, attribute counts, name lengths, and text/entity
expansion.  :class:`ParserLimits` carries those caps; the parser checks
them inline (a comparison per construct, nothing per character) and
raises :class:`~repro.errors.LimitExceeded` — a
:class:`~repro.errors.ParseError` subclass, so existing catch sites and
the per-document fault isolation in :func:`repro.engine.validate_many`
treat an over-limit document exactly like a malformed one.

Like :class:`~repro.observability.ResourceBudget`, limits can be threaded
explicitly (``limits=`` keyword on :func:`~repro.xmlmodel.parse_document`
and :func:`~repro.xmlmodel.iter_events`) or installed ambiently for a
dynamic extent::

    with ParserLimits(max_depth=64):
        parse_document(text)        # the parser observes the 64-deep cap

Explicit threading wins over ambient; with neither, :data:`DEFAULT_LIMITS`
applies — generous caps (64 MiB input, 1000 deep, 256 attributes) that no
legitimate document in the paper's workloads approaches, but that stop a
10k-deep nesting bomb long before the interpreter's recursion limit or
memory would.  ``ParserLimits.unlimited()`` disables every cap for callers
that genuinely trust their input.
"""

from __future__ import annotations

import contextlib
import contextvars

from repro.errors import LimitExceeded

_ambient = contextvars.ContextVar("repro_parser_limits", default=None)

_LIMIT_FIELDS = (
    "max_input_bytes",
    "max_depth",
    "max_attributes",
    "max_name_length",
    "max_text_length",
)


class ParserLimits:
    """Caps on attacker-controlled dimensions of one parsed document.

    Args:
        max_input_bytes: largest accepted document, in UTF-8 bytes.
        max_depth: deepest accepted element nesting (root is depth 1).
        max_attributes: most attributes accepted on one start tag.
        max_name_length: longest accepted element/attribute name.
        max_text_length: longest accepted single character-data, CDATA,
            or attribute-value run, measured after entity decoding (the
            parser has no user-defined entities, so decoding never grows
            text — this also caps the raw run).

    ``None`` disables a cap.  Instances are immutable in spirit (the
    parser only reads them) and safe to share across threads.
    """

    __slots__ = _LIMIT_FIELDS + ("_token",)

    def __init__(self, max_input_bytes=64 * 1024 * 1024, max_depth=1000,
                 max_attributes=256, max_name_length=1024,
                 max_text_length=16 * 1024 * 1024):
        for name, limit in (
            ("max_input_bytes", max_input_bytes),
            ("max_depth", max_depth),
            ("max_attributes", max_attributes),
            ("max_name_length", max_name_length),
            ("max_text_length", max_text_length),
        ):
            if limit is not None and limit <= 0:
                raise ValueError(f"{name} must be positive, got {limit!r}")
        self.max_input_bytes = max_input_bytes
        self.max_depth = max_depth
        self.max_attributes = max_attributes
        self.max_name_length = max_name_length
        self.max_text_length = max_text_length
        self._token = None

    @classmethod
    def unlimited(cls):
        """Limits with every cap disabled (trusted input only)."""
        return cls(max_input_bytes=None, max_depth=None, max_attributes=None,
                   max_name_length=None, max_text_length=None)

    def check_input_size(self, text):
        """Reject ``text`` if its UTF-8 size exceeds ``max_input_bytes``.

        The common case costs one ``len``: a string of N code points
        encodes to at least N and at most 4N bytes, so the exact encoded
        length is only computed in the narrow band where it matters.
        """
        limit = self.max_input_bytes
        if limit is None:
            return
        length = len(text)
        if length * 4 <= limit:
            return
        size = length if length > limit else len(text.encode("utf-8"))
        if size > limit:
            raise LimitExceeded(
                f"input size limit exceeded ({size} bytes > "
                f"max_input_bytes={limit})",
                limit="max_input_bytes", value=size,
            )

    def to_dict(self):
        return {name: getattr(self, name) for name in _LIMIT_FIELDS}

    def __repr__(self):
        caps = ", ".join(
            f"{name}={getattr(self, name)}" for name in _LIMIT_FIELDS
        )
        return f"ParserLimits({caps})"

    # -- ambient installation ---------------------------------------------
    def __enter__(self):
        self._token = _ambient.set(self)
        return self

    def __exit__(self, *exc_info):
        _ambient.reset(self._token)
        self._token = None
        return False


DEFAULT_LIMITS = ParserLimits()


def current_limits():
    """The ambiently installed limits, or ``None``."""
    return _ambient.get()


def resolve_limits(limits=None):
    """``limits`` if given, else ambient, else :data:`DEFAULT_LIMITS`."""
    if limits is not None:
        return limits
    ambient = _ambient.get()
    return ambient if ambient is not None else DEFAULT_LIMITS


@contextlib.contextmanager
def installed_limits(limits):
    """Install ``limits`` ambiently for one dynamic extent.

    Unlike entering the instance, this is safe to use concurrently from
    many threads (each gets its own contextvar token).
    """
    token = _ambient.set(limits)
    try:
        yield limits
    finally:
        _ambient.reset(token)
