"""Resilience: fault isolation and hardening for untrusted input.

The serving north star (heavy traffic from millions of users) makes
hostile and malformed documents the *common* case.  This package is the
document-side counterpart of :mod:`repro.observability`'s schema-side
budgets — three orthogonal facilities, dependency-free and thread-safe:

* :mod:`repro.resilience.limits` — :class:`ParserLimits` caps input
  size, nesting depth, attribute counts, name lengths, and text runs;
  the parser enforces them iteratively, so depth is policy-limited,
  never interpreter-limited (:class:`~repro.errors.LimitExceeded`).
* :mod:`repro.resilience.policy` — :class:`FailurePolicy` (``raise`` /
  ``isolate`` / ``fail_fast``) with structured :class:`DocumentOutcome`
  rows per batch input, plus :class:`RetryPolicy` backoff for transient
  source callables.
* :mod:`repro.resilience.faults` — a seeded, contextvar-installable
  :class:`FaultInjector` whose injected faults chaos tests prove are
  contained to a single document.
"""

from repro.errors import DeadlineExceeded, InjectedFault, LimitExceeded
from repro.resilience.faults import (
    FaultInjector,
    current_injector,
    installed_injector,
    probe,
    resolve_injector,
)
from repro.resilience.limits import (
    DEFAULT_LIMITS,
    ParserLimits,
    current_limits,
    installed_limits,
    resolve_limits,
)
from repro.resilience.policy import (
    NO_RETRY,
    DocumentError,
    DocumentOutcome,
    FailurePolicy,
    RetryPolicy,
)

__all__ = [
    "DEFAULT_LIMITS",
    "DeadlineExceeded",
    "DocumentError",
    "DocumentOutcome",
    "FailurePolicy",
    "FaultInjector",
    "InjectedFault",
    "LimitExceeded",
    "NO_RETRY",
    "ParserLimits",
    "RetryPolicy",
    "current_injector",
    "current_limits",
    "installed_injector",
    "installed_limits",
    "probe",
    "resolve_injector",
    "resolve_limits",
]
