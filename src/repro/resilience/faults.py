"""Deterministic fault injection for chaos-testing the validation path.

A serving claim like "one bad document cannot take down the batch" is only
credible if it is *exercised*: :class:`FaultInjector` plants seeded,
reproducible failures at the engine's hot-path sites (``parse``,
``compile``, ``validate``, ``source``) so tests and
``scripts/chaos_smoke.py`` can prove containment — every injected fault
surfaces as exactly one isolated per-document error, never an escaped
exception.

The injector follows the :class:`~repro.observability.ResourceBudget`
idiom: thread it explicitly (``injector=`` on
:func:`repro.engine.validate_many`) or install it ambiently for a dynamic
extent (``with FaultInjector(...):``).  Instrumented call sites resolve
the ambient injector with :func:`current_injector`; with none installed
the probe costs a single contextvar read per *document* (sites fire once
per unit of work, never per event).

Determinism: one seeded ``random.Random`` drives every decision behind a
lock, so for a fixed seed, rates, and number of probes the *number* of
injected faults is exact — even under a thread pool, where only the
assignment of faults to documents may vary with scheduling.
"""

from __future__ import annotations

import contextlib
import contextvars
import random
import threading

from repro.errors import InjectedFault

_ambient = contextvars.ContextVar("repro_fault_injector", default=None)

SITES = ("parse", "compile", "validate", "source")


class FaultInjector:
    """Seeded probabilistic fault injection at named sites.

    Args:
        seed: seed for the decision stream (identical runs inject
            identically many faults).
        rates: mapping of site name -> injection probability in [0, 1].
            Sites absent from the mapping never fire.

    Attributes:
        rates: the (validated) site -> probability mapping.
    """

    __slots__ = ("rates", "_rng", "_lock", "_checks", "_injected", "_token")

    def __init__(self, seed=0, rates=None):
        self.rates = dict(rates or {})
        for site, rate in self.rates.items():
            if site not in SITES:
                raise ValueError(
                    f"unknown injection site {site!r} (known: {SITES})"
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"rate for {site!r} must be in [0, 1], got {rate!r}"
                )
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._checks = {site: 0 for site in SITES}
        self._injected = {site: 0 for site in SITES}
        self._token = None

    def maybe_fail(self, site):
        """Probe ``site``: raise :class:`InjectedFault` per its rate.

        Every probe consumes one draw from the seeded stream (even at
        rate 0), so adding a site to ``rates`` never perturbs the
        decisions of the others retroactively within a fixed probe order.
        """
        rate = self.rates.get(site, 0.0)
        with self._lock:
            self._checks[site] = self._checks.get(site, 0) + 1
            roll = self._rng.random()
            fire = roll < rate
            if fire:
                self._injected[site] = self._injected.get(site, 0) + 1
                ordinal = self._injected[site]
        if fire:
            raise InjectedFault(
                f"injected fault #{ordinal} at site {site!r}", site=site
            )

    # -- accounting -------------------------------------------------------
    def checks(self, site=None):
        """Probes seen (per site, or total when ``site`` is ``None``)."""
        with self._lock:
            if site is not None:
                return self._checks.get(site, 0)
            return sum(self._checks.values())

    def injected(self, site=None):
        """Faults fired (per site, or total when ``site`` is ``None``)."""
        with self._lock:
            if site is not None:
                return self._injected.get(site, 0)
            return sum(self._injected.values())

    def stats(self):
        """Snapshot dict: per-site probe and injection counts."""
        with self._lock:
            return {
                "checks": dict(self._checks),
                "injected": dict(self._injected),
            }

    def __repr__(self):
        return (
            f"FaultInjector(rates={self.rates}, "
            f"injected={self.injected()}/{self.checks()})"
        )

    # -- ambient installation ---------------------------------------------
    def __enter__(self):
        self._token = _ambient.set(self)
        return self

    def __exit__(self, *exc_info):
        _ambient.reset(self._token)
        self._token = None
        return False


def current_injector():
    """The ambiently installed injector, or ``None``."""
    return _ambient.get()


def resolve_injector(injector=None):
    """``injector`` if given, else the ambient one (``None`` if neither)."""
    return injector if injector is not None else _ambient.get()


@contextlib.contextmanager
def installed_injector(injector):
    """Install ``injector`` ambiently; safe for concurrent use per thread.

    The worker threads of :func:`repro.engine.validate_many` use this
    (contextvars do not propagate into pool threads automatically, and
    entering the instance stores its reset token on ``self``, which
    concurrent entries would clobber).
    """
    token = _ambient.set(injector)
    try:
        yield injector
    finally:
        _ambient.reset(token)


def probe(site):
    """Module-level convenience used by instrumented hot paths.

    Resolves the ambient injector and probes ``site``; a no-op (one
    contextvar read) when no injector is installed.
    """
    injector = _ambient.get()
    if injector is not None:
        injector.maybe_fail(site)
