"""Failure policies, per-document outcomes, and retry for batch serving.

One malformed document must not kill a 10k-document batch.  The batch API
(:func:`repro.engine.validate_many`) accepts a failure *policy*:

* ``"raise"`` — legacy behaviour: the first per-document exception
  propagates to the caller (the batch result is lost).
* ``"isolate"`` — every document produces a :class:`DocumentOutcome`, in
  input order; a document that fails to fetch, parse, or validate yields
  a structured :class:`DocumentError` (kind, message, line/column) plus
  its elapsed time, and the rest of the batch is unaffected.
* ``"fail_fast"`` — like isolate, but the batch stops at the first
  *errored* document (invalid-but-well-formed documents are ordinary
  results, not failures); the remaining inputs are reported with error
  kind ``"skipped"``.

:class:`RetryPolicy` adds bounded retry-with-backoff for *source
callables* — documents fetched lazily from files or sockets, where
transient ``OSError`` is routine.  The sleeper is injectable so tests can
assert the exact backoff schedule without waiting.
"""

from __future__ import annotations

import random
import time

from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    InjectedFault,
    LimitExceeded,
    ParseError,
    ReproError,
)


class FailurePolicy:
    """The three batch failure policies (string constants + coercion)."""

    RAISE = "raise"
    ISOLATE = "isolate"
    FAIL_FAST = "fail_fast"
    ALL = (RAISE, ISOLATE, FAIL_FAST)

    @classmethod
    def coerce(cls, value):
        """Validate ``value`` (a policy string); returns it normalized."""
        if isinstance(value, str) and value in cls.ALL:
            return value
        raise ValueError(
            f"unknown failure policy {value!r} (expected one of {cls.ALL})"
        )


# Error-kind classification, most specific first.  LimitExceeded is a
# ParseError subclass and InjectedFault/DeadlineExceeded/BudgetExceeded
# are ReproErrors, so order matters.
_KINDS = (
    (LimitExceeded, "limit"),
    (ParseError, "parse"),
    (InjectedFault, "injected"),
    (DeadlineExceeded, "deadline"),
    (BudgetExceeded, "budget"),
    (OSError, "io"),
    (ReproError, "error"),
)


class DocumentError:
    """A structured description of why one document failed.

    Attributes:
        kind: classification — ``parse`` / ``limit`` / ``injected`` /
            ``deadline`` / ``budget`` / ``io`` / ``error`` (other library
            failure) / ``internal`` (unexpected exception) / ``skipped``
            (fail-fast remainder).
        message: the exception's human-readable message.
        line / column: 1-based source location, when the failure was a
            parse/limit error that knows one.
    """

    __slots__ = ("kind", "message", "line", "column")

    def __init__(self, kind, message, line=None, column=None):
        self.kind = kind
        self.message = message
        self.line = line
        self.column = column

    @classmethod
    def from_exception(cls, exc):
        for exc_type, kind in _KINDS:
            if isinstance(exc, exc_type):
                return cls(
                    kind,
                    str(exc),
                    line=getattr(exc, "line", None),
                    column=getattr(exc, "column", None),
                )
        return cls("internal", f"{type(exc).__name__}: {exc}")

    @classmethod
    def skipped(cls, reason="skipped by fail_fast after an earlier error"):
        return cls("skipped", reason)

    def to_dict(self):
        return {
            "kind": self.kind,
            "message": self.message,
            "line": self.line,
            "column": self.column,
        }

    def __repr__(self):
        where = ""
        if self.line is not None:
            where = f" @ line {self.line}"
            if self.column is not None:
                where += f", column {self.column}"
        return f"DocumentError({self.kind}: {self.message}{where})"


class DocumentOutcome:
    """The per-document result row of an isolated batch run.

    Exactly one of ``report`` / ``error`` is set.

    Attributes:
        index: position of the document in the input batch.
        report: the validation report, when the document was processed.
        error: a :class:`DocumentError`, when it was not.
        elapsed_seconds: wall time spent on this document (fetch +
            parse + validate, including retries).
        attempts: times the source was fetched (1 unless retried).
    """

    __slots__ = ("index", "report", "error", "elapsed_seconds", "attempts")

    def __init__(self, index, report=None, error=None, elapsed_seconds=0.0,
                 attempts=1):
        if (report is None) == (error is None):
            raise ValueError("exactly one of report/error must be given")
        self.index = index
        self.report = report
        self.error = error
        self.elapsed_seconds = elapsed_seconds
        self.attempts = attempts

    @property
    def ok(self):
        """True iff the document was processed (it may still be invalid)."""
        return self.error is None

    @property
    def valid(self):
        """True iff processed and the report holds no violations."""
        return self.error is None and self.report.valid

    def to_dict(self):
        return {
            "index": self.index,
            "ok": self.ok,
            "valid": self.valid if self.ok else None,
            "violations": list(self.report.violations) if self.ok else None,
            "error": self.error.to_dict() if self.error else None,
            "elapsed_seconds": self.elapsed_seconds,
            "attempts": self.attempts,
        }

    def __repr__(self):
        if self.ok:
            state = "valid" if self.valid else (
                f"invalid({len(self.report.violations)})"
            )
        else:
            state = f"error[{self.error.kind}]"
        return f"DocumentOutcome(#{self.index} {state})"


class RetryPolicy:
    """Bounded retry-with-backoff for transient source failures.

    Args:
        max_attempts: total tries (1 = no retry).
        backoff: delay before the second attempt, in seconds.
        multiplier: backoff growth factor per further attempt.
        max_backoff: ceiling on any single delay.
        retry_on: exception types considered transient; anything else
            propagates immediately.
        sleep: the sleeper (injectable for tests; defaults to
            :func:`time.sleep`).
        jitter: when True, apply *full jitter*: each delay is drawn
            uniformly from ``[0, min(backoff * multiplier^k,
            max_backoff)]``.  Deterministic multiplicative backoff
            synchronizes retry storms under a service — every client
            that failed together retries together, forever; full jitter
            decorrelates them while keeping the same backoff envelope.
        rng: the random source for jitter (anything with ``uniform``;
            injectable so tests can assert the exact schedule).
            Defaults to the module-level :mod:`random` generator.
    """

    __slots__ = ("max_attempts", "backoff", "multiplier", "max_backoff",
                 "retry_on", "sleep", "jitter", "rng")

    def __init__(self, max_attempts=3, backoff=0.05, multiplier=2.0,
                 max_backoff=1.0, retry_on=(OSError,), sleep=time.sleep,
                 jitter=False, rng=None):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff < 0 or max_backoff < 0:
            raise ValueError("backoff delays must be non-negative")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.multiplier = multiplier
        self.max_backoff = max_backoff
        self.retry_on = tuple(retry_on)
        self.sleep = sleep
        self.jitter = jitter
        self.rng = rng if rng is not None else random

    def delays(self):
        """The backoff schedule: one delay per retry (attempts - 1).

        Without jitter the schedule is deterministic (the envelope
        itself); with jitter each element is a fresh uniform draw below
        the envelope, so two calls yield different schedules unless the
        injected ``rng`` is seeded identically.
        """
        delay = self.backoff
        for __ in range(self.max_attempts - 1):
            ceiling = min(delay, self.max_backoff)
            yield self.rng.uniform(0.0, ceiling) if self.jitter else ceiling
            delay *= self.multiplier

    def call(self, fn, on_retry=None):
        """Invoke ``fn()`` with retries; returns ``(result, attempts)``.

        ``on_retry(attempt, exc)`` is called before each backoff sleep
        (metrics hooks).  The final failure propagates unchanged.
        """
        delays = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(), attempt
            except self.retry_on as exc:
                if attempt == self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(next(delays))

    def __repr__(self):
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"backoff={self.backoff}, multiplier={self.multiplier})"
        )


NO_RETRY = RetryPolicy(max_attempts=1)
