"""Exception hierarchy for the BonXai reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause.  More
specific subclasses distinguish the layer that failed (parsing, schema
well-formedness, validation, translation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ParseError(ReproError):
    """A textual input (regex, XML, DTD, BonXai, XSD) could not be parsed.

    Attributes:
        message: human-readable description of the problem.
        line: 1-based line of the offending token, when known.
        column: 1-based column of the offending token, when known.
    """

    def __init__(self, message, line=None, column=None):
        self.message = message
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")


class LimitExceeded(ParseError):
    """An input tripped a :class:`~repro.resilience.ParserLimits` cap.

    A subclass of :class:`ParseError` because an over-limit document is
    rejected exactly like a malformed one (same catch sites, same
    line/column diagnostics); the extra attributes let callers tell a
    policy refusal from a well-formedness failure.

    Attributes:
        limit: the name of the limit that tripped (e.g. ``max_depth``).
        value: the observed value that exceeded the limit.
    """

    def __init__(self, message, line=None, column=None, limit=None,
                 value=None):
        self.limit = limit
        self.value = value
        super().__init__(message, line=line, column=column)


class DeadlineExceeded(ReproError):
    """A per-document wall-clock deadline passed during validation.

    Attributes:
        elapsed_seconds: wall time consumed when the deadline tripped.
        deadline_seconds: the configured per-document allowance.
    """

    def __init__(self, message, elapsed_seconds=None, deadline_seconds=None):
        self.elapsed_seconds = elapsed_seconds
        self.deadline_seconds = deadline_seconds
        super().__init__(message)


class InjectedFault(ReproError):
    """A fault deliberately raised by :class:`~repro.resilience.FaultInjector`.

    Chaos tests install a seeded injector and then assert that every
    injected fault is contained to one document (never escaping a batch
    run under ``policy="isolate"``).

    Attributes:
        site: the injection point that fired (``parse`` / ``compile`` /
            ``validate`` / ``source``).
    """

    def __init__(self, message, site=None):
        self.site = site
        super().__init__(message)


class RegexError(ReproError):
    """A regular expression is structurally invalid for the requested use."""


class NotDeterministicError(RegexError):
    """A content model violates the Unique Particle Attribution rule.

    Raised when a regular expression that must be deterministic
    (one-unambiguous, [Brüggemann-Klein & Wood 1998]) is not.
    """

    def __init__(self, message, witness=None):
        self.witness = witness
        if witness is not None:
            message = f"{message} (witness: {witness})"
        super().__init__(message)


class SchemaError(ReproError):
    """A schema object violates a well-formedness constraint."""


class EDCViolation(SchemaError):
    """An XSD violates the Element Declarations Consistent constraint.

    The same element name occurs with two different types in one content
    model (or among the typed start elements).
    """


class PatchError(SchemaError):
    """An XML patch document is malformed or addresses a missing node."""


class ValidationError(ReproError):
    """An XML document does not conform to a schema.

    Validators normally *return* structured reports instead of raising;
    this exception is used by ``assert_valid``-style conveniences.
    """

    def __init__(self, message, violations=()):
        self.violations = list(violations)
        super().__init__(message)


class TranslationError(ReproError):
    """A schema could not be translated (e.g. unsupported feature)."""


class NotKSuffixError(TranslationError):
    """A schema is not k-suffix for the requested (or any) k."""


class BudgetExceeded(TranslationError):
    """A construction ran past its :class:`~repro.observability.ResourceBudget`.

    The exponential arrows of the translation square (Theorems 8/9 prove
    the blow-up unavoidable) can exceed any practical limit on adversarial
    input; a serving process must refuse such schemas promptly rather than
    hang.  ``stats`` carries the partial progress at the point of refusal
    (states created, elapsed seconds, the limit that tripped, and the
    construction site).

    Attributes:
        stats: dict of partial-progress figures, e.g. ``states_created``,
            ``elapsed_seconds``, ``limit``, ``where``.
    """

    def __init__(self, message, stats=None):
        self.stats = dict(stats or {})
        super().__init__(message)
