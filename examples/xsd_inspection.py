#!/usr/bin/env python3
"""Inspecting and understanding an XSD through BonXai (Section 5's
"debugging of existing XSDs" scenario).

Loads the (completed) Figure 3 XSD, runs the structural and semantic
k-suffix analyses, minimizes it, translates it to BonXai for human
consumption, and lints the result.
"""

from repro.bonxai import bxsd_to_schema, lint_bxsd, print_schema
from repro.paperdata import FIGURE3_XSD, figure1_document
from repro.translation import (
    detect_k_suffix,
    detect_semantic_locality,
    dfa_based_to_bxsd,
    hybrid_dfa_based_to_bxsd,
    xsd_to_dfa_based,
)
from repro.xsd import minimize_dfa_based, read_xsd, validate_xsd


def main():
    xsd = read_xsd(FIGURE3_XSD)
    print(f"parsed XSD: {len(xsd.types)} types, "
          f"{len(xsd.ename)} element names")

    report = validate_xsd(xsd, figure1_document())
    print("Figure 1 document valid:", report.valid)
    print()

    dfa_based = xsd_to_dfa_based(xsd)
    print("== context analysis ==")
    structural = detect_k_suffix(dfa_based, max_k=6)
    semantic = detect_semantic_locality(dfa_based, max_k=6)
    print("structural k-suffix:", structural if structural is not None
          else "unbounded (recursive sections carry their context)")
    print("semantic k-locality:", semantic if semantic is not None
          else "unbounded (template vs content sections differ at any depth)")
    print()

    minimal = minimize_dfa_based(dfa_based)
    print(f"type minimization: {len(dfa_based.states) - 1} -> "
          f"{len(minimal.states) - 1} types")
    print()

    generic = dfa_based_to_bxsd(minimal)
    bxsd = hybrid_dfa_based_to_bxsd(minimal)
    print(f"== the XSD as a BonXai schema ==")
    print(f"(generic Algorithm 2 size: {generic.size}; the priority-aware")
    print(f" hybrid below: {bxsd.size} -- general rules first, exceptions")
    print(f" later, exactly the Section 3.2 philosophy)")
    print()
    print(print_schema(bxsd_to_schema(bxsd)))

    print("== lint ==")
    diagnostics = lint_bxsd(bxsd)
    if not diagnostics:
        print("no findings")
    for diagnostic in diagnostics:
        print(" ", diagnostic)


if __name__ == "__main__":
    main()
