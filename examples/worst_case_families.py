#!/usr/bin/env python3
"""The worst-case translation families (Theorems 8 and 9).

Generates the paper's two lower-bound families, runs the actual
translation algorithms on them, and prints the measured growth — small
inputs, exponentially growing outputs, in both directions.
"""

from repro.families import theorem8_xsd, theorem9_bxsd
from repro.translation import bxsd_to_dfa_based, dfa_based_to_bxsd


def main():
    print("== Theorem 8: XSD -> BonXai blow-up "
          "(Ehrenfeucht-Zeiger construction) ==")
    print(f"{'n':>3} | {'XSD size':>8} | {'BXSD rules':>10} | "
          f"{'BXSD size':>9} | {'growth':>7}")
    previous = None
    for n in (2, 3, 4, 5):
        schema = theorem8_xsd(n)
        bxsd = dfa_based_to_bxsd(schema)
        growth = "" if previous is None else f"x{bxsd.size / previous:.1f}"
        print(f"{n:>3} | {schema.total_size:>8} | {len(bxsd.rules):>10} | "
              f"{bxsd.size:>9} | {growth:>7}")
        previous = bxsd.size
    print("input grows quadratically, output size grows exponentially —")
    print("the priorities of BonXai cannot rescue it (Theorem 8).")
    print()

    print("== Theorem 9: BonXai -> XSD blow-up ==")
    print(f"{'n':>3} | {'BXSD size':>9} | {'XSD types':>9} | {'growth':>7}")
    previous = None
    for n in (2, 3, 4, 5, 6):
        bxsd = theorem9_bxsd(n)
        dfa_based = bxsd_to_dfa_based(bxsd)
        types = len(dfa_based.states) - 1
        growth = "" if previous is None else f"x{types / previous:.1f}"
        print(f"{n:>3} | {bxsd.size:>9} | {types:>9} | {growth:>7}")
        previous = types
    print("input grows linearly, the number of types grows exponentially —")
    print("the XSD must track sets of once-seen indices (Theorem 9).")


if __name__ == "__main__":
    main()
