#!/usr/bin/env python3
"""A guided tour of every BonXai language feature in one schema.

Covers: namespaces, the global block, element groups, attribute groups,
mixed content, interleaving (``&``), counters (``{n,m}``), descendant and
child axes, priorities (general rule + exception), attribute rules with
built-in simple types, native simple types (the Section 5 extension),
and all three integrity-constraint kinds.  For each feature the script
shows a conforming and a violating snippet side by side.
"""

from repro.bonxai import compile_schema, parse_bonxai
from repro.xmlmodel import parse_document

SCHEMA = """\
target namespace urn:conference
namespace xs = http://www.w3.org/2001/XMLSchema

global { conference }

types {
  # Native simple types (the extension the paper's Conclusions call for).
  simple-type track  = enumeration { research | industry | demo }
  simple-type ccode  = pattern { [A-Z][A-Z][0-9][0-9] }
  simple-type rating = restriction xs:integer { min 1 max 5 }
}

groups {
  group inline = { element em | element code }
  attribute-group ids = { attribute id, attribute legacy-id? }
}

grammar {
  # Structure: a conference holds 1..3 days, each day 1..10 talks.
  conference  = { attribute code, (element day){1,3} }
  day         = { attribute date, (element talk){1,10} }

  # xs:all-style interleaving: abstract and speaker in any order.
  talk        = { attribute-group ids, attribute track,
                  element abstract & element speaker }
  speaker     = mixed { }

  # Mixed content with groups.
  abstract    = mixed { (group inline)* }
  (em|code)   = mixed { }

  # Priorities: the later rule overrides the general 'talk' rule above
  # on every talk (both patterns match), additionally allowing up to
  # three review children -- write general rules first, refinements last.
  day//talk   = { attribute-group ids, attribute track,
                  element abstract & element speaker &
                  (element review){0,3} }
  review      = mixed { attribute score, attribute of }

  # Attribute rules assign (built-in and native) simple types.
  @date       = { type xs:date }
  @score      = { type rating }
  @track      = { type track }
  @code       = { type ccode }
  @id         = { type xs:NCName }
}

constraints {
  key talkKey conference/day/talk (@id)
  unique conference/day (@date)
  keyref reviewRef day/talk/review (@of) refers talkKey
}
"""

GOOD = """\
<conference code="PD15">
  <day date="2015-05-31">
    <talk id="t1" track="research">
      <speaker>W. Martens</speaker>
      <abstract>Patterns <em>beat</em> types; see <code>bonxai</code>.</abstract>
      <review score="5" of="t1">strong accept</review>
    </talk>
    <talk id="t2" track="demo" legacy-id="old-7">
      <abstract>A live tool demo.</abstract>
      <speaker>M. Niewerth</speaker>
    </talk>
  </day>
</conference>
"""

BAD_SNIPPETS = [
    ("counter violation: zero talks on a day",
     GOOD.replace('<talk id="t1" track="research">', "<skip/>")
         .replace("</talk>", "", 1)
         .replace('<speaker>W. Martens</speaker>', "")
         .replace('<abstract>Patterns <em>beat</em> types; '
                  'see <code>bonxai</code>.</abstract>', "")
         .replace('<review score="5" of="t1">strong accept</review>', "")),
    ("native enumeration: unknown track",
     GOOD.replace('track="demo"', 'track="poster"')),
    ("native pattern: bad conference code",
     GOOD.replace('code="PD15"', 'code="pods"')),
    ("native restriction: rating out of range",
     GOOD.replace('score="5"', 'score="11"')),
    ("built-in type: malformed date",
     GOOD.replace('date="2015-05-31"', 'date="May 31"')),
    ("key: duplicate talk id",
     GOOD.replace('id="t2"', 'id="t1"')),
    ("keyref: review of unknown talk",
     GOOD.replace('of="t1"', 'of="t9"')),
    ("interleave: missing speaker",
     GOOD.replace("<speaker>M. Niewerth</speaker>", "")),
]


def main():
    compiled = compile_schema(parse_bonxai(SCHEMA))
    report = compiled.validate(parse_document(GOOD))
    print("conforming document:", "VALID" if report.valid
          else report.violations)
    print()
    print("feature violations (each must be caught):")
    for label, text in BAD_SNIPPETS:
        bad_report = compiled.validate(parse_document(text))
        verdict = "caught" if not bad_report.valid else "MISSED!"
        first = bad_report.violations[0] if bad_report.violations else ""
        print(f"  [{verdict}] {label}")
        if first:
            print(f"            {first[:90]}")


if __name__ == "__main__":
    main()
