#!/usr/bin/env python3
"""The Section 4.4 practicality study on a synthetic web-XSD corpus.

The paper cites an examination of 225 XSDs from the web: in more than 98%
of them, an element's content model depends only on its own label, its
parent's and its grandparent's (3-suffix).  The original corpus is not
available; this reproduces the *shape* of the study on a generated corpus
with the same mix, then demonstrates why it matters: on the k-suffix
schemas, the fragment translations (Theorems 12/13) are fast and yield
small schemas.
"""

import random
import statistics

from repro.corpus import format_study, generate_corpus, run_study


def main(size=225, seed=2015):
    rng = random.Random(seed)
    corpus = generate_corpus(rng, size=size)
    print(f"generated corpus: {size} schemas "
          f"(mix calibrated to the published study)")
    print()

    result = run_study(corpus, max_k=6, measure_translations=True)
    print(format_study(result))
    print()

    print("== per generator kind ==")
    for kind, histogram in sorted(result.per_kind.items()):
        rendered = ", ".join(
            f"k={'none' if k is None else k}: {count}"
            for k, count in sorted(
                histogram.items(), key=lambda item: (item[0] is None, item[0] or 0)
            )
        )
        print(f"  {kind:<12} {rendered}")
    print()

    ksuffix_times = result.timings["ksuffix"]
    generic_times = result.timings["generic"]
    if ksuffix_times:
        print("== translation cost on the k-suffix schemas ==")
        print(f"  Theorem 13 (fragment): median "
              f"{1000 * statistics.median(ksuffix_times):.2f} ms")
        print(f"  Algorithm 2 (generic): median "
              f"{1000 * statistics.median(generic_times):.2f} ms")


if __name__ == "__main__":
    main()
