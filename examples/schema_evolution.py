#!/usr/bin/env python3
"""Schema evolution with priorities (Section 3.2 of the paper).

The running example allows arbitrarily deep section nesting.  The paper
shows that restricting the nesting depth of sections under ``content`` to
three needs *one appended rule* in BonXai::

    content/section/section/section = { attribute title, group markup }

whereas the equivalent change in XML Schema requires three separate
complex types for sections (one per allowed depth).  This script performs
the evolution, verifies the new semantics, and counts the types in the
translated XSDs before and after.
"""

from repro.bonxai import compile_schema, parse_bonxai
from repro.paperdata import FIGURE5_BONXAI, figure1_document
from repro.translation import bxsd_to_dfa_based, dfa_based_to_xsd
from repro.xmlmodel import element, XMLDocument
from repro.xsd import minimize_xsd

EVOLVED = FIGURE5_BONXAI.replace(
    "  (@name|@color|@title) = { type xs:string }",
    "  content/section/section/section = "
    "mixed { attribute title, group markup }\n"
    "  (@name|@color|@title) = { type xs:string }",
)


def section(title, *children):
    return element("section", *children, attributes={"title": title})


def document_with_depth(depth):
    """A document whose content has a section chain of the given depth."""
    innermost = section(f"level {depth}")
    chain = innermost
    for level in range(depth - 1, 0, -1):
        chain = section(f"level {level}", chain)
    return XMLDocument(
        element(
            "document",
            element("template"),
            element("userstyles"),
            element("content", chain),
        )
    )


def main():
    original = compile_schema(parse_bonxai(FIGURE5_BONXAI))
    evolved = compile_schema(parse_bonxai(EVOLVED))

    print("== the appended rule ==")
    print("  content/section/section/section = "
          "mixed { attribute title, group markup }")
    print()

    print("== nesting depth acceptance ==")
    print(f"{'depth':>6} | {'original':>9} | {'evolved':>8}")
    for depth in (1, 2, 3, 4, 5):
        doc = document_with_depth(depth)
        before = "valid" if original.validate(doc).valid else "INVALID"
        after = "valid" if evolved.validate(doc).valid else "INVALID"
        print(f"{depth:>6} | {before:>9} | {after:>8}")
    print()

    # The paper's running example still validates (depth was never > 2).
    fig1 = figure1_document()
    print("Figure 1 document still valid:",
          evolved.validate(fig1).valid)
    print()

    print("== cost of the same change in XML Schema ==")
    xsd_before = minimize_xsd(
        dfa_based_to_xsd(bxsd_to_dfa_based(original.bxsd))
    )
    xsd_after = minimize_xsd(
        dfa_based_to_xsd(bxsd_to_dfa_based(evolved.bxsd))
    )
    section_types_before = _section_types(xsd_before)
    section_types_after = _section_types(xsd_after)
    print(f"minimal XSD types before: {len(xsd_before.types)} "
          f"({section_types_before} for sections)")
    print(f"minimal XSD types after:  {len(xsd_after.types)} "
          f"({section_types_after} for sections)")
    print()
    print("BonXai evolution cost: 1 appended rule.")
    print(f"XML Schema evolution cost: "
          f"{section_types_after - section_types_before} extra section "
          f"types (plus rewiring), exactly as Section 3.2 predicts.")
    print()

    print("== in-place evolution and the schema cache ==")
    # A serving stack memoizes compilation in a SchemaCache whose fast
    # path is keyed by object identity.  Evolving the *same* XSD object
    # in place (as a long-lived server would) leaves that fast path
    # serving the pre-evolution compiled form — invalidate() drops the
    # stale entry so the next lookup re-fingerprints and recompiles.
    from repro.engine import SchemaCache, StreamingValidator

    cache = SchemaCache()
    live = dfa_based_to_xsd(bxsd_to_dfa_based(original.bxsd))
    doc4 = document_with_depth(4)
    verdict = StreamingValidator(cache.get(live)).validate(doc4)
    print("depth-4 before evolution:",
          "valid" if verdict.valid else "INVALID")
    live.ename, live.types = xsd_after.ename, xsd_after.types
    live.rho, live.start = xsd_after.rho, xsd_after.start
    cache.invalidate(live)  # without this, the stale tables survive
    verdict = StreamingValidator(cache.get(live)).validate(doc4)
    print("depth-4 after in-place evolution + invalidate():",
          "valid" if verdict.valid else "INVALID")
    print()

    print("== what exactly changed? (repro diff) ==")
    # The diff wing (DESIGN §5j) certifies the evolution per element
    # type: which ancestor path diverges, and a separator — here a
    # k=1 subsequence pattern — proving the difference, plus a witness
    # document valid against exactly one side.  The CLI equivalent is
    #   repro diff figure5.bonxai evolved.bonxai   (exit 1 = differ)
    from repro.diff import schema_diff

    diff = schema_diff(
        bxsd_to_dfa_based(original.bxsd),
        bxsd_to_dfa_based(evolved.bxsd),
    )
    print("equivalent:", diff.equivalent)
    for certificate in diff.certificates:
        print(" ", certificate.summary())
        witness = certificate.directions[0].witness_document
        accepted = "original" if certificate.directions[0].side == "left" \
            else "evolved"
        print(f"  witness document accepted by the {accepted} schema only "
              f"({len(witness.splitlines())} lines)")


def _section_types(xsd):
    """Count the types assigned to 'section' elements below content."""
    from repro.xsd import split_typed_name

    section_types = set()
    for model in xsd.rho.values():
        for symbol in model.element_names():
            name, type_name = split_typed_name(symbol)
            if name == "section":
                section_types.add(type_name)
    return len(section_types)


if __name__ == "__main__":
    main()
