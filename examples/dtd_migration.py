#!/usr/bin/env python3
"""Migrating a DTD to BonXai, then refining it with context (Section 2).

Walks the paper's Section 2 storyline mechanically:

1. parse the Figure 2 DTD;
2. translate it to a BonXai schema (one rule per element name — a
   1-suffix BXSD, like Figure 4);
3. verify the translation is *exactly* document-equivalent to the DTD;
4. refine the schema with ancestor contexts (toward Figure 5) so that
   ``section`` means different things under ``template`` and ``content``;
5. show a document the DTD accepts but the refined schema rejects.
"""

from repro.bonxai import bxsd_to_schema, compile_schema, parse_bonxai, print_schema
from repro.paperdata import (
    FIGURE5_BONXAI,
    figure1_document,
    figure2_dtd,
)
from repro.translation import bxsd_to_dfa_based, dtd_to_bxsd
from repro.xmlmodel import element, XMLDocument
from repro.xsd import dfa_xsd_equivalent


def main():
    dtd = figure2_dtd()
    print("== step 1: the DTD declares", len(dtd.elements), "elements ==")

    bxsd = dtd_to_bxsd(dtd)
    print()
    print("== step 2: DTD -> BonXai (one rule per element) ==")
    print(print_schema(bxsd_to_schema(bxsd)))

    print("== step 3: equivalence check ==")
    fig1 = figure1_document()
    print("Figure 1 valid under the DTD:   ", dtd.is_valid(fig1))
    print("Figure 1 valid under the BonXai:", bxsd.is_valid(fig1))

    refined = compile_schema(parse_bonxai(FIGURE5_BONXAI))
    print()
    print("== step 4: the refined (Figure 5) schema ==")
    print("Figure 1 valid under the refinement:",
          refined.validate(fig1).valid)

    # The refinement is strictly stronger: the DTD cannot distinguish
    # sections under template from sections under content, so it accepts
    # text inside template sections; the refined schema does not.
    sloppy = XMLDocument(
        element(
            "document",
            element(
                "template",
                element("section", "stray text inside a template section"),
            ),
            element("userstyles"),
            element("content"),
        )
    )
    print()
    print("== step 5: what the extra expressiveness buys ==")
    print("sloppy document valid under the DTD:        ",
          dtd.is_valid(sloppy))
    print("sloppy document valid under the refinement: ",
          refined.validate(sloppy).valid)
    for violation in refined.validate(sloppy).violations:
        print("  -", violation)

    equal = dfa_xsd_equivalent(
        bxsd_to_dfa_based(bxsd), bxsd_to_dfa_based(refined.bxsd)
    )
    print()
    print("refined schema equivalent to the DTD?", equal,
          "(expected False: it is strictly stronger)")


if __name__ == "__main__":
    main()
