#!/usr/bin/env python3
"""Quickstart: author a BonXai schema, validate XML, convert to XML Schema.

Run with::

    python examples/quickstart.py
"""

from repro import (
    compile_schema,
    dfa_based_to_xsd,
    bxsd_to_dfa_based,
    parse_bonxai,
    parse_document,
    write_xsd,
)

SCHEMA = """\
target namespace http://example.org/notes
namespace xs = http://www.w3.org/2001/XMLSchema

global { notebook }

groups {
  group inline = { element em | element code }
}

grammar {
  # A notebook holds notes; a note has a title and paragraphs.
  notebook      = { (element note)* }
  note          = { attribute created, element title, (element para)+ }
  title         = mixed { }
  para          = mixed { (group inline)* }
  (em|code)     = mixed { }

  # Notes may be nested one level inside a para; nested notes are
  # simpler: no creation date required (priorities: last rule wins).
  para          = mixed { (group inline | element note)* }
  para//note    = { element title, (element para)+ }

  @created      = { type xs:date }
}

constraints {
  key noteKey notebook/note (@created)
}
"""

DOCUMENT = """\
<notebook>
  <note created="2015-05-31">
    <title>PODS reading list</title>
    <para>Read the <em>BonXai</em> paper and skim <code>bonxai-spec</code>.
      <note><title>Follow-up</title><para>Try the tool.</para></note>
    </para>
  </note>
  <note created="2015-06-01">
    <title>Ideas</title>
    <para>Patterns instead of types.</para>
  </note>
</notebook>
"""


def main():
    schema = compile_schema(parse_bonxai(SCHEMA))
    document = parse_document(DOCUMENT)

    report = schema.validate(document)
    print("== validation ==")
    print("valid:", report.valid)
    for violation in report.violations:
        print("  -", violation)

    print()
    print("== matched rules (per element) ==")
    for line in report.highlighted(document, schema.source):
        print(" ", line)

    print()
    print("== the equivalent XML Schema (Algorithms 3 + 4) ==")
    xsd = dfa_based_to_xsd(bxsd_to_dfa_based(schema.bxsd))
    print(write_xsd(xsd, target_namespace="http://example.org/notes"))

    # A document that violates the schema: nested notes must not carry a
    # creation date, and paragraphs outside notes are not allowed.
    bad = parse_document(
        "<notebook><note created='2015-06-02'><title>x</title>"
        "<para><note created='oops'><title>y</title><para>z</para></note>"
        "</para></note></notebook>"
    )
    bad_report = schema.validate(bad)
    print("== a non-conforming document ==")
    print("valid:", bad_report.valid)
    for violation in bad_report.violations:
        print("  -", violation)


if __name__ == "__main__":
    main()
