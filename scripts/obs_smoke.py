"""End-to-end smoke for the request-observability layer (``make obs-smoke``).

Starts ``repro serve`` as a real subprocess with the full correlation
stack on — ``--access-log``, ``--trace-log``, tail sampling tuned so
only errored and slow requests are retained — and demonstrates the
debugging story the observability layer exists for:

* a request carrying a W3C ``traceparent`` gets that **same trace id**
  back in the ``X-Trace-Id`` response header, in its JSONL access-log
  line, in the retained trace served by ``GET /debug/traces`` (and the
  on-disk trace ring), and as the exemplar on the
  ``serve_request_latency`` histogram — one id joins all four signals;
* the response ``traceparent`` names the server's root span inside the
  client's trace, so the client can stitch the hop into its own trace;
* the tail sampler keeps the errored request and drops the fast clean
  one (reservoir 0), and the kept trace carries the worker-side engine
  spans with the request's ``tenant`` — baggage survived the pool hop;
* every request produced an access-log line (clean ones too), with
  ``queue_wait_ms``/``worker_ms`` split out;
* ``/metrics`` carries ``# HELP`` text for the serve instruments;
* ``repro traces`` (against the live daemon *and* the ring file left
  after SIGTERM drain) and ``repro top --once`` both render.

Exits nonzero with a diagnostic on any failure, so it gates
``make check``.
"""

from __future__ import annotations

import http.client
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile

TIMEOUT = 30.0

TRACE_ID = "4bf92f3577b34da6a3ce929d0e0e4736"   # the W3C spec's example
PARENT_ID = "00f067aa0ba902b7"


def check(condition, message):
    if not condition:
        print(f"obs-smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def request(port, method, path, body=None, headers=None, timeout=10.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        decoded = (
            json.loads(raw) if content_type.startswith("application/json")
            else raw.decode("utf-8")
        )
        return response.status, decoded, dict(response.getheaders())
    finally:
        conn.close()


def run_cli(env, *argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, timeout=TIMEOUT,
    )


def main():
    from repro.paperdata import FIGURE1_XML, FIGURE3_XSD

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="obs_smoke_"))
    access_path = workdir / "access.jsonl"
    trace_path = workdir / "traces.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--workers", "2", "--queue-depth", "4",
         "--access-log", str(access_path),
         "--trace-log", str(trace_path),
         "--tail-latency-ms", "30000", "--tail-reservoir", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    try:
        announce = process.stdout.readline().strip()
        check(announce.startswith("serving on http://"),
              f"unexpected announce line {announce!r}")
        port = int(announce.rsplit(":", 1)[1])
        valid_body = {"schema": FIGURE3_XSD, "schema_kind": "xsd",
                      "document": FIGURE1_XML, "tenant": "acme"}

        # -- one traced request, one erroring request ------------------
        traceparent = f"00-{TRACE_ID}-{PARENT_ID}-01"
        status, __, headers = request(
            port, "POST", "/validate", valid_body,
            {"traceparent": traceparent},
        )
        check(status == 200, f"valid document answered {status}")
        check(headers.get("X-Trace-Id") == TRACE_ID,
              f"X-Trace-Id {headers.get('X-Trace-Id')!r} is not the "
              "client's trace id")
        request_id = headers.get("X-Request-Id")
        check(bool(request_id), "no X-Request-Id on a traced request")
        echoed = headers.get("traceparent", "")
        check(echoed.startswith(f"00-{TRACE_ID}-")
              and not echoed.startswith(f"00-{TRACE_ID}-{PARENT_ID}"),
              f"response traceparent {echoed!r} does not name a server "
              "span inside the client's trace")

        error_body = dict(valid_body, schema="<broken", tenant="oops")
        status, __, error_headers = request(
            port, "POST", "/validate", error_body
        )
        check(status == 422, f"broken schema answered {status}")
        error_trace = error_headers.get("X-Trace-Id")
        check(bool(error_trace), "no X-Trace-Id on the erroring request")

        # -- tail sampling: error kept, fast clean request dropped -----
        status, payload, __ = request(port, "GET", "/debug/traces")
        check(status == 200 and payload["enabled"],
              "debug/traces is not enabled")
        kept_ids = {t["trace_id"] for t in payload["traces"]}
        check(error_trace in kept_ids,
              "the errored trace was not retained")
        check(TRACE_ID not in kept_ids,
              "a fast clean trace survived a reservoir of 0")
        (kept,) = [t for t in payload["traces"]
                   if t["trace_id"] == error_trace]
        check(kept["reason"] == "error",
              f"kept for {kept['reason']!r}, expected 'error'")
        span_names = {s["name"] for s in kept["spans"]}
        check("serve.request" in span_names,
              f"retained trace lacks the root span: {span_names}")
        worker_side = [s for s in kept["spans"]
                       if s["name"] != "serve.request"]
        check(worker_side, "retained trace lacks worker-side spans")
        check(all(s["attributes"].get("tenant") == "oops"
                  for s in worker_side),
              "baggage (tenant) did not survive the pool hop")

        # -- access log: every request one line, ids join --------------
        process_lines = []
        for line in access_path.read_text(encoding="utf-8").splitlines():
            process_lines.append(json.loads(line))
        by_trace = {line.get("trace_id"): line for line in process_lines}
        check(TRACE_ID in by_trace, "traced request has no access line")
        line = by_trace[TRACE_ID]
        check(line.get("request_id") == request_id,
              "access line request_id does not match the response header")
        check(line.get("tenant") == "acme" and line.get("status") == 200,
              f"unexpected access line {line}")
        check(line.get("queue_wait_ms") is not None
              and line.get("worker_ms") is not None,
              "access line lacks the queue/worker timing split")
        check(by_trace.get(error_trace, {}).get("status") == 422,
              "erroring request's access line is missing or wrong")

        # -- metrics: exemplars + HELP ---------------------------------
        status, text, __ = request(port, "GET", "/metrics")
        check(status == 200, "metrics scrape failed")
        check("# HELP serve_request_latency " in text,
              "serve_request_latency lacks HELP text")
        exemplar_lines = [
            l for l in text.splitlines()
            if "serve_request_latency_bucket" in l and "# {" in l
        ]
        check(exemplar_lines, "no exemplars on serve_request_latency")
        exemplar_ids = {TRACE_ID, error_trace}
        check(any(f'trace_id="{t}"' in l
                  for l in exemplar_lines for t in exemplar_ids),
              "exemplars do not reference the requests' trace ids")

        # -- the CLI viewers against the live daemon -------------------
        top = run_cli(env, "top", f"127.0.0.1:{port}", "--once")
        check(top.returncode == 0, f"repro top failed: {top.stderr}")
        check("requests" in top.stdout and "latency" in top.stdout,
              f"repro top frame looks wrong: {top.stdout!r}")
        traces = run_cli(env, "traces", f"http://127.0.0.1:{port}",
                         "--verbose")
        check(traces.returncode == 0,
              f"repro traces failed: {traces.stderr}")
        check(error_trace in traces.stdout,
              "repro traces does not show the retained trace")

        # -- drain, then read the rings post-mortem --------------------
        process.send_signal(signal.SIGTERM)
        exit_code = process.wait(timeout=TIMEOUT)
        check(exit_code == 0, f"SIGTERM drain exited {exit_code}")
        ring = run_cli(env, "traces", str(trace_path))
        check(ring.returncode == 0,
              f"repro traces on the ring failed: {ring.stderr}")
        check(error_trace in ring.stdout,
              "the trace ring on disk lost the retained trace")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    print("obs-smoke OK: one trace id across header/access-log/debug-"
          "traces/exemplar, error kept + fast dropped, baggage crossed "
          "the pool, repro top + traces rendered, ring survived drain")


if __name__ == "__main__":
    main()
