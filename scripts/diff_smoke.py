"""Smoke test for the schema-diff surface (``make diff-smoke``).

Drives ``repro diff`` end to end on real schema files so ``make check``
catches a broken diff path cheaply:

* **exit 0** — Figure-5 BonXai vs Figure-3 XSD (the paper proves them
  language-equal): cross-formalism equivalence through the translation
  square;
* **exit 1 + certificate** — Figure-5 vs the schema-evolution
  depth-limited variant: the output must carry the separator one-liner,
  the divergence path, and a witness document that parses and is valid
  against exactly the original schema;
* **exit 2** — a missing file and an unparsable schema both error
  cleanly;
* **--json** — machine output parses, agrees with the text verdict,
  and pins the certificate's kind/atom;
* **budget** — a tiny ``--budget-states`` allowance exits 2, not a
  hang.

Exits nonzero with a diagnostic on any failure.
"""

from __future__ import annotations

import contextlib
import io
import json
import pathlib
import sys
import tempfile

from repro.cli import main
from repro.paperdata import FIGURE3_XSD, FIGURE5_BONXAI

def evolved_bonxai():
    """Figure 5 with a depth-limit rule added (as schema_evolution.py).

    The rule must come after ``content//section`` — BonXai gives later
    rules precedence — so it is spliced in front of the attribute-group
    rule, exactly like the example script.
    """
    anchor = "  (@name|@color|@title) = { type xs:string }"
    if anchor not in FIGURE5_BONXAI:
        raise AssertionError("Figure-5 text changed; update diff_smoke")
    return FIGURE5_BONXAI.replace(
        anchor,
        "  content/section/section/section = "
        "mixed { attribute title, group markup }\n" + anchor,
    )


def run(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(argv)
    return code, out.getvalue()


def check(condition, message):
    if not condition:
        print(f"diff-smoke: FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def main_smoke():
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        fig5 = root / "fig5.bonxai"
        fig3 = root / "fig3.xsd"
        evolved = root / "evolved.bonxai"
        broken = root / "broken.xsd"
        fig5.write_text(FIGURE5_BONXAI)
        fig3.write_text(FIGURE3_XSD)
        evolved.write_text(evolved_bonxai())
        broken.write_text("<this is not a schema")

        # Equivalent pair, cross-formalism: exit 0.
        code, text = run(["diff", str(fig5), str(fig3)])
        check(code == 0, f"fig5 vs fig3 exited {code}, expected 0")
        check("equivalent" in text, f"no equivalence line in {text!r}")

        # Differing pair: exit 1 with a full certificate.
        code, text = run(["diff", str(fig5), str(evolved)])
        check(code == 1, f"fig5 vs evolved exited {code}, expected 1")
        check(
            "left allows 'section'; right never does" in text,
            f"separator one-liner missing from:\n{text}",
        )
        check(
            "/document/content/section/section/section" in text,
            f"divergence path missing from:\n{text}",
        )
        check("witness document" in text, f"no witness in:\n{text}")

        # The witness document must be real: parse it back out and
        # validate it against both sides.
        from repro.bonxai import compile_schema, parse_bonxai
        from repro.translation import bxsd_to_dfa_based
        from repro.xmlmodel import parse_document

        witness_lines = []
        collecting = False
        for line in text.splitlines():
            if "witness document" in line:
                collecting = True
                continue
            if collecting:
                if line.startswith("      "):
                    witness_lines.append(line[6:])
                else:
                    break
        check(witness_lines, "could not extract the witness document")
        document = parse_document("\n".join(witness_lines))
        original = bxsd_to_dfa_based(
            compile_schema(parse_bonxai(FIGURE5_BONXAI)).bxsd
        )
        limited = bxsd_to_dfa_based(
            compile_schema(parse_bonxai(evolved_bonxai())).bxsd
        )
        check(original.is_valid(document), "witness invalid on the left")
        check(not limited.is_valid(document), "witness valid on the right")

        # JSON output: parses, and pins the certificate shape.
        code, text = run(["diff", str(fig5), str(evolved), "--json"])
        check(code == 1, f"--json exited {code}, expected 1")
        data = json.loads(text)
        check(data["equivalent"] is False, "json verdict drifted")
        direction = data["certificates"][0]["directions"][0]
        check(
            direction["separator"] == {
                "kind": "subsequence", "k": 1, "atom": ["section"],
            },
            f"certificate drifted: {direction['separator']}",
        )
        check(
            "witness_document" in direction,
            "json output lost the witness document",
        )

        # Errors: missing file and unparsable schema both exit 2.
        code, __ = run(["diff", str(fig5), str(root / "missing.xsd")])
        check(code == 2, f"missing file exited {code}, expected 2")
        code, __ = run(["diff", str(fig5), str(broken)])
        check(code == 2, f"broken schema exited {code}, expected 2")

        # Budget: a tiny state allowance is an orderly exit 2.
        code, __ = run([
            "diff", str(fig5), str(evolved), "--budget-states", "1",
        ])
        check(code == 2, f"budget blowup exited {code}, expected 2")

    print("diff-smoke: OK (exit codes 0/1/2, certificate, witness, json)")
    return 0


if __name__ == "__main__":
    sys.exit(main_smoke())
