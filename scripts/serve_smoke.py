"""End-to-end smoke for the serve daemon (``make serve-smoke``).

Starts ``repro serve`` as a real subprocess on an ephemeral port and
drives the service claims from the outside, exactly as a deployment
would see them:

* a well-formed valid document answers **200** with ``valid: true``;
* a malformed document answers **422** with a structured parse error
  (never a traceback, never a hung worker);
* a Theorem 9 budget-blowup schema answers **503** while it burns real
  compile budgets, then — past the breaker threshold — **fail-fast 503**
  with the *cached* exhaustion stats and a ``Retry-After`` hint (the
  quarantined schema no longer costs a recompile);
* ``/healthz`` stays 200 throughout, and ``/metrics`` exposes the
  request/shed/breaker counters in Prometheus text format;
* SIGTERM drains gracefully: the process exits 0 on its own, with the
  final metrics snapshot flushed to ``--metrics-file``.

Exits nonzero with a diagnostic on any failure, so it gates
``make check``.
"""

from __future__ import annotations

import http.client
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

TIMEOUT = 30.0


def check(condition, message):
    if not condition:
        print(f"serve-smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def request(port, method, path, body=None, timeout=10.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        decoded = (
            json.loads(raw) if content_type.startswith("application/json")
            else raw.decode("utf-8")
        )
        return response.status, decoded, dict(response.getheaders())
    finally:
        conn.close()


def blowup_bonxai(n=6):
    from repro.bonxai import bxsd_to_schema, print_schema
    from repro.families import theorem9_bxsd

    return print_schema(bxsd_to_schema(theorem9_bxsd(n)))


def main():
    from repro.paperdata import FIGURE1_XML, FIGURE3_XSD

    metrics_file = pathlib.Path(tempfile.mkdtemp()) / "serve_metrics.prom"
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--workers", "2", "--queue-depth", "4",
         "--budget-states", "200", "--breaker-threshold", "2",
         "--breaker-cooldown", "60",
         "--metrics-file", str(metrics_file)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    try:
        announce = process.stdout.readline().strip()
        check(announce.startswith("serving on http://"),
              f"unexpected announce line {announce!r}")
        port = int(announce.rsplit(":", 1)[1])

        # -- the happy path --------------------------------------------
        status, body, __ = request(port, "POST", "/validate", {
            "schema": FIGURE3_XSD, "schema_kind": "xsd",
            "document": FIGURE1_XML,
        })
        check(status == 200, f"valid document answered {status}: {body}")
        check(body["valid"] is True, f"expected valid, got {body}")

        # -- malformed document: structured 422, worker survives -------
        status, body, __ = request(port, "POST", "/validate", {
            "schema": FIGURE3_XSD, "schema_kind": "xsd",
            "document": "<document><content></document>",
        })
        check(status == 422, f"malformed document answered {status}")
        check(body["error"] == "parse", f"expected parse error, got {body}")

        # -- budget blowup: 503 under budget, then quarantined ---------
        blowup = {
            "schema": blowup_bonxai(), "schema_kind": "bonxai",
            "document": FIGURE1_XML,
        }
        for round_number in (1, 2):
            status, body, __ = request(port, "POST", "/validate", blowup)
            check(status in (429, 503),
                  f"blowup round {round_number} answered {status}")
            check(body["error"] == "budget",
                  f"blowup round {round_number}: {body}")

        started = time.perf_counter()
        status, body, headers = request(port, "POST", "/validate", blowup)
        fastfail = time.perf_counter() - started
        check(status == 503, f"quarantined schema answered {status}")
        check(body["error"] == "quarantined",
              f"expected quarantine, got {body}")
        check(body["stats"], "quarantine response lost the cached stats")
        check("Retry-After" in headers, "quarantine lacks Retry-After")
        check(fastfail < 1.0,
              f"quarantined fail-fast took {fastfail:.2f}s (no recompile "
              "should mean milliseconds)")

        # -- liveness + metrics ----------------------------------------
        status, __, __ = request(port, "GET", "/healthz")
        check(status == 200, "healthz is not 200 under quarantine")
        status, text, __ = request(port, "GET", "/metrics")
        check(status == 200, "metrics scrape failed")
        for needle in ("# TYPE serve_requests counter",
                       "serve_breaker_trips", "serve_up 1"):
            check(needle in text, f"metrics exposition lacks {needle!r}")

        # -- graceful drain --------------------------------------------
        process.send_signal(signal.SIGTERM)
        exit_code = process.wait(timeout=TIMEOUT)
        check(exit_code == 0, f"SIGTERM drain exited {exit_code}")
        check(metrics_file.exists(), "final metrics snapshot not flushed")
        flushed = metrics_file.read_text(encoding="utf-8")
        check("serve_up 0" in flushed,
              "flushed snapshot does not record shutdown")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    print("serve-smoke OK: 200 valid / 422 malformed / 503 budget / "
          f"quarantine fail-fast {fastfail * 1000:.0f} ms / metrics "
          "scraped / SIGTERM drained with exit 0")


if __name__ == "__main__":
    main()
