"""Smoke test for the tracing surface (``make trace-smoke``).

Exercises ``--trace FILE`` on a traced convert in both directions (so
Algorithms 1-4 all record spans) and on a traced streaming validate, then
checks the JSONL trace files hard:

* every line is a well-formed span record with the expected keys;
* every span is closed (``end_ns`` stamped, nonnegative duration), and an
  in-process tracer run reports zero open spans;
* parent ids form a tree: every non-root parent id is an earlier span in
  the same file (allocation order guarantees parent_id < span_id, so the
  graph is acyclic by construction);
* with no tracer installed, the module-level ``span()`` returns the
  shared no-op singleton — the disabled path allocates nothing.

Exits nonzero (with a diagnostic) on any failure, so it gates
``make check``.
"""

from __future__ import annotations

import contextlib
import io
import json
import pathlib
import sys
import tempfile

from repro.cli import main
from repro.observability import NULL_SPAN, Tracer, span
from repro.paperdata import FIGURE1_XML, FIGURE5_BONXAI
from repro.translation import bxsd_to_xsd, xsd_to_bxsd


def run_cli(argv):
    stderr = io.StringIO()
    stdout = io.StringIO()
    with contextlib.redirect_stderr(stderr), contextlib.redirect_stdout(
        stdout
    ):
        code = main(argv)
    return code, stdout.getvalue(), stderr.getvalue()


def check(condition, message):
    if not condition:
        print(f"trace-smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


SPAN_KEYS = {
    "name", "span_id", "trace_id", "parent_id", "start_ns", "end_ns",
    "duration_ns", "status", "attributes",
}


def load_trace(path):
    """Parse one JSONL trace file, checking shape and tree structure."""
    spans = []
    for line in path.read_text().splitlines():
        record = json.loads(line)  # raises (fails the smoke) if not JSON
        check(
            set(record) == SPAN_KEYS,
            f"span record keys {sorted(record)} != expected",
        )
        spans.append(record)
    check(spans, f"empty trace file {path}")
    ids = set()
    for record in spans:
        check(
            record["end_ns"] is not None and record["duration_ns"] >= 0,
            f"unclosed or time-warped span: {record}",
        )
        ids.add(record["span_id"])
    # A span finishes (and is written) only after all its children, so a
    # parent appears *later* in the file; ids are allocated parent-first.
    for record in spans:
        parent = record["parent_id"]
        if parent is not None:
            check(
                parent in ids and parent < record["span_id"],
                f"span {record['span_id']} has dangling/late parent "
                f"{parent}",
            )
    roots = [r for r in spans if r["parent_id"] is None]
    check(roots, "no root span in trace")
    return spans


def main_smoke():
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        bonxai = root / "figure5.bonxai"
        document = root / "figure1.xml"
        bonxai.write_text(FIGURE5_BONXAI)
        document.write_text(FIGURE1_XML)

        # BonXai -> XSD: Algorithms 3 + 4 record spans.
        forward = root / "convert_forward.jsonl"
        xsd = root / "figure5.xsd"
        code, out, err = run_cli(
            ["convert", str(bonxai), "-o", str(xsd),
             "--trace", str(forward)]
        )
        check(code == 0, f"convert exited {code}; stderr:\n{err}")
        names = {record["name"] for record in load_trace(forward)}
        check(
            {"translation.algorithm3", "translation.algorithm4"} <= names,
            f"missing Algorithm 3/4 spans: {sorted(names)}",
        )

        # XSD -> BonXai: Algorithms 1 + 2 (hybrid) record spans.
        backward = root / "convert_backward.jsonl"
        code, out, err = run_cli(
            ["convert", str(xsd), "-o", str(root / "roundtrip.bonxai"),
             "--trace", str(backward)]
        )
        check(code == 0, f"reverse convert exited {code}; stderr:\n{err}")
        names = {record["name"] for record in load_trace(backward)}
        check(
            "translation.algorithm1" in names
            and {"translation.algorithm2",
                 "translation.algorithm2.hybrid"} & names,
            f"missing Algorithm 1/2 spans: {sorted(names)}",
        )

        # Traced streaming validation: batch + per-doc + engine spans.
        validated = root / "validate.jsonl"
        code, out, err = run_cli(
            ["validate", str(bonxai), str(document), str(document),
             "--engine", "streaming", "--trace", str(validated)]
        )
        check(code == 0, f"validate exited {code}; stderr:\n{err}")
        spans = load_trace(validated)
        names = {record["name"] for record in spans}
        check(
            {"engine.batch", "engine.batch.doc", "engine.validate"}
            <= names,
            f"missing engine spans: {sorted(names)}",
        )

    # In-process: a clean run leaves no span open.
    with Tracer() as tracer:
        with span("smoke.outer"):
            with span("smoke.inner"):
                pass
    check(
        tracer.open_spans() == 0,
        f"{tracer.open_spans()} span(s) left open after a clean run",
    )

    # Disabled tracing is a no-op: the shared singleton, not an allocation.
    check(
        span("smoke.disabled") is NULL_SPAN,
        "span() with no tracer did not return the shared NULL_SPAN",
    )

    # The translation arrows run unchanged (and untraced) when disabled.
    from repro.bonxai import compile_schema, parse_bonxai

    bxsd = compile_schema(parse_bonxai(FIGURE5_BONXAI)).bxsd
    xsd_to_bxsd(bxsd_to_xsd(bxsd))

    print("trace-smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main_smoke())
