"""Conformance smoke for the cross-formalism harness (``make conformance-smoke``).

Exercises the whole harness end to end and asserts its three serving
claims, so a broken oracle/shrinker/corpus cannot hide behind a green
"0 disagreements":

* **clean baseline** — a seeded mini-sweep over every generator family
  (random, DTD-like, context-aware) reports zero disagreements, and the
  ``conformance.cases`` / ``conformance.documents`` counters advance by
  exactly the sweep's own tallies;
* **fire drill** — with a :class:`~repro.resilience.FaultInjector`
  forcing every validator call to fault, the sweep catches the faults
  as ``crash`` disagreements, delta-debugs each repro to at most 5
  schema rules and 10 document nodes, and pins it into a temporary
  corpus; replaying the pinned case *with* the injector reproduces
  (open-case contract), replaying *without* it reports "appears fixed"
  (the corpus nags until the file is flipped to ``fixed``);
* **regression corpus** — every case under ``tests/conformance_corpus/``
  replays clean, so the pinned PR2–PR4 bugs provably stay fixed.

Exits nonzero with a diagnostic on any failure, so it gates ``make check``.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

from repro.conformance import (
    SweepConfig,
    load_corpus,
    replay_case,
    run_sweep,
)
from repro.observability import default_registry
from repro.resilience.faults import FaultInjector, installed_injector

CORPUS_DIR = pathlib.Path(__file__).resolve().parents[1] / (
    "tests/conformance_corpus"
)

MAX_SHRUNK_RULES = 5
MAX_SHRUNK_NODES = 10


def check(condition, message):
    if not condition:
        print(f"conformance-smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def main():
    registry = default_registry()
    before_cases = registry.counter("conformance.cases").value
    before_docs = registry.counter("conformance.documents").value

    # 1. Clean baseline sweep.
    result = run_sweep(SweepConfig(seed=0, cases=40))
    check(result.cases_run == 40, f"ran {result.cases_run}/40 cases")
    check(result.clean, "baseline sweep disagreed:\n" + "\n".join(
        failure.describe() for failure in result.failures
    ))
    check(result.documents > 0, "baseline sweep validated no documents")
    check(
        registry.counter("conformance.cases").value - before_cases == 40,
        "conformance.cases counter did not advance by the sweep size",
    )
    check(
        registry.counter("conformance.documents").value - before_docs
        == result.documents,
        "conformance.documents counter disagrees with the sweep tally",
    )
    print(f"baseline: {result.summary()}")

    # 2. Fire drill: injected faults must be caught, shrunk, and pinned.
    with tempfile.TemporaryDirectory() as tmp:
        injector = FaultInjector(seed=7, rates={"validate": 1.0})
        with installed_injector(injector):
            drill = run_sweep(SweepConfig(
                seed=0, cases=10, max_failures=5,
                save_failures=True, corpus_dir=tmp,
            ))
        check(drill.failures, "fire drill: injected faults went unnoticed")
        for failure in drill.failures:
            check(
                failure.kind == "crash",
                f"fire drill: expected crash, got {failure.kind}",
            )
            check(
                failure.schema_rules <= MAX_SHRUNK_RULES,
                f"fire drill: shrunk schema still has "
                f"{failure.schema_rules} rules",
            )
            check(
                failure.document_nodes <= MAX_SHRUNK_NODES,
                f"fire drill: shrunk document still has "
                f"{failure.document_nodes} nodes",
            )
            check(
                failure.corpus_path is not None,
                "fire drill: failure was not pinned to the corpus",
            )
        pinned = load_corpus(tmp)
        check(pinned, "fire drill: corpus directory is empty")
        with installed_injector(
            FaultInjector(seed=7, rates={"validate": 1.0})
        ):
            for case in pinned:
                problems = replay_case(case)
                check(
                    not problems,
                    f"fire drill: open case {case.case_id} did not "
                    f"reproduce under the injector: {problems}",
                )
        for case in pinned:
            problems = replay_case(case)
            check(
                problems and "appears fixed" in problems[0],
                f"fire drill: open case {case.case_id} should report "
                f"'appears fixed' without the injector: {problems}",
            )
        print(
            f"fire drill: {len(drill.failures)} injected fault(s) caught, "
            f"shrunk, pinned, and replayed"
        )

    # 3. The committed regression corpus must replay clean.
    committed = load_corpus(CORPUS_DIR)
    check(committed, f"no corpus cases found under {CORPUS_DIR}")
    for case in committed:
        problems = replay_case(case)
        check(
            not problems,
            f"corpus case {case.case_id} regressed: {problems}",
        )
    print(f"corpus: {len(committed)} pinned case(s) replay clean")
    print("conformance-smoke OK")


if __name__ == "__main__":
    main()
