"""Performance regression guard for the engine hot path (``make perfguard``).

Replays the small tier of experiment E13 — the ~280-element running-
example document — and compares what it measures against the committed
floors in ``benchmarks/results/perfguard_floor.json``.  A change that
silently knocks the dense fast path off (a fallback on the benchmark
corpus, a lost memo, an accidental object-per-event regression) fails
``make check`` here instead of surfacing as a mystery in the next full
bench run.

All throughput floors are *in-run ratios* (dense vs tree, stream vs
tree), not absolute rates: absolute element/second numbers swing with
machine load, but the ratio between two pipelines measured back-to-back
in one process is stable.  The only absolute floor is the identity
cache hit, whose ceiling is the ISSUE's 10 microsecond budget.

Exits nonzero with a diagnostic on any floor violation.  To re-baseline
after an intentional change, edit the JSON floor file alongside the
change that justifies it.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

FLOOR_FILE = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "results" / "perfguard_floor.json"
)


def _rate(function, size, repeats=5):
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return size / best


def measure():
    from repro.engine import SchemaCache, StreamingValidator, compile_xsd
    from repro.observability import installed_tracer
    from repro.paperdata import figure3_xsd
    from repro.xmlmodel import parse_document, write_document
    from repro.xmlmodel.parser import iter_events
    from repro.xsd.validator import validate_xsd

    from benchmarks.bench_e11_validation import build_corpus

    with installed_tracer(None):
        doc = build_corpus(sizes=(200,))[200]
        size = doc.size()
        text = write_document(doc)
        xsd = figure3_xsd()
        compiled = compile_xsd(xsd)
        if not compiled.dense:
            print("perfguard FAILED: figure-3 schema no longer compiles "
                  "dense tables", file=sys.stderr)
            sys.exit(1)
        validator = StreamingValidator(compiled)

        report = validator.validate(text)
        if not report.valid:
            print("perfguard FAILED: benchmark document no longer "
                  f"validates: {report.violations[:3]}", file=sys.stderr)
            sys.exit(1)

        e2e_tree = _rate(lambda: validate_xsd(xsd, parse_document(text)),
                         size)
        e2e_dict = _rate(
            lambda: validator.validate_events(iter_events(text)), size
        )
        e2e_dense = _rate(lambda: validator.validate(text), size)

        cache = SchemaCache(maxsize=4)
        cache.get(xsd)
        repeats = 2000
        started = time.perf_counter()
        for __ in range(repeats):
            cache.get(xsd)
        cache_hit_us = (time.perf_counter() - started) / repeats * 1e6

        incremental_vs_full = _measure_incremental(
            text, xsd, compiled, full_seconds=size / e2e_tree
        )

        diff_vs_tree = _measure_diff(full_seconds=size / e2e_tree)

        serve = _measure_serve()

    return {
        "elements": size,
        "e2e_tree_rate": e2e_tree,
        "e2e_dict_rate": e2e_dict,
        "e2e_dense_rate": e2e_dense,
        "dense_vs_tree": e2e_dense / e2e_tree,
        "dict_vs_tree": e2e_dict / e2e_tree,
        "cache_hit_us": cache_hit_us,
        "incremental_vs_full": incremental_vs_full,
        "diff_vs_tree": diff_vs_tree,
        **serve,
    }


def _measure_incremental(text, xsd, compiled, full_seconds):
    """The E15 miniature: per-edit incremental cost vs a full revalidate.

    Replays a short random edit storm through a
    :class:`~repro.engine.incremental.ValidatedDocument` and compares
    the mean per-edit cost against the in-run tree-validator rate (what
    a non-incremental pipeline pays after every edit).  The committed
    ``incremental_vs_full`` floor catches a change that silently turns
    an edit's footprint back into a whole-tree walk.
    """
    import random

    from repro.engine import ValidatedDocument
    from repro.errors import SchemaError
    from repro.xmlmodel import parse_document
    from repro.xmlmodel.patch import random_op

    handle = ValidatedDocument(parse_document(text), compiled)
    rng = random.Random("perfguard-e15")
    labels = list(compiled.names) + ["zz-stranger"]
    edits = 200
    applied = 0
    edit_seconds = 0.0
    while applied < edits:
        op = random_op(handle.document.root, rng, labels)
        started = time.perf_counter()
        try:
            op.apply_incremental(handle)
        except (SchemaError, IndexError, ValueError):
            continue
        finally:
            edit_seconds += time.perf_counter() - started
        applied += 1
    return full_seconds / (edit_seconds / applied)


def _measure_diff(full_seconds):
    """The schema-diff small tier: full certificates on the Figure pair.

    Diffs the paper's Figure-5 schema against the schema-evolution
    depth-limited variant — divergence walk, separator search, and
    witness-document construction — and expresses the cost as a
    multiple of the in-run tree validation pass.  The committed
    ``diff_vs_tree_ceiling`` catches a separator search that silently
    goes super-linear on the small tier (e.g. a lost cap sending the
    spectrum tier exponential).
    """
    from repro.bonxai import compile_schema, parse_bonxai
    from repro.diff import schema_diff
    from repro.paperdata import FIGURE5_BONXAI
    from repro.translation import bxsd_to_dfa_based

    anchor = "  (@name|@color|@title) = { type xs:string }"
    evolved_text = FIGURE5_BONXAI.replace(
        anchor,
        "  content/section/section/section = "
        "mixed { attribute title, group markup }\n" + anchor,
    )
    original = bxsd_to_dfa_based(
        compile_schema(parse_bonxai(FIGURE5_BONXAI)).bxsd
    )
    limited = bxsd_to_dfa_based(
        compile_schema(parse_bonxai(evolved_text)).bxsd
    )
    best = float("inf")
    for __ in range(5):
        started = time.perf_counter()
        diff = schema_diff(original, limited)
        best = min(best, time.perf_counter() - started)
    if diff.equivalent or not diff.certificates[0].directions:
        print("perfguard FAILED: the Figure-family diff pair no longer "
              "produces a certificate", file=sys.stderr)
        sys.exit(1)
    return best / full_seconds


def _measure_serve():
    """The E16 miniature: an overload burst against an in-thread daemon.

    Runs a client fleet at twice the admission capacity against a
    two-worker server and checks the serving posture: the excess is shed
    immediately with 429 (the ``serve_shed_rate`` floor catches an
    admission layer that silently starts queuing without bound) and the
    *admitted* requests' p99 stays inside the request deadline (the
    ``serve_p99_vs_deadline_ceiling`` catches a hot path that lets
    latency grow past the end-to-end promise under load).
    """
    import http.client
    import threading

    from repro.observability import Histogram, MetricsRegistry
    from repro.paperdata import FIGURE1_XML, FIGURE3_XSD
    from repro.serve import ServeConfig, start_in_thread

    deadline = 5.0
    config = ServeConfig(port=0, workers=2, queue_depth=2,
                         tenant_inflight=None, deadline=deadline)
    capacity = config.workers + config.queue_depth
    clients = 2 * capacity
    requests_per_client = 10
    body = json.dumps({"schema": FIGURE3_XSD, "schema_kind": "xsd",
                       "document": FIGURE1_XML, "deadline": deadline})
    lock = threading.Lock()
    admitted = []
    tallies = {"shed": 0, "other": 0}
    barrier = threading.Barrier(clients)

    def client():
        barrier.wait()
        for __ in range(requests_per_client):
            conn = http.client.HTTPConnection("127.0.0.1", port,
                                              timeout=10.0)
            try:
                started = time.perf_counter()
                conn.request("POST", "/validate", body=body)
                response = conn.getresponse()
                response.read()
                elapsed = time.perf_counter() - started
            finally:
                conn.close()
            with lock:
                if response.status == 200:
                    admitted.append(elapsed)
                elif response.status == 429:
                    tallies["shed"] += 1
                else:
                    tallies["other"] += 1

    with start_in_thread(config, registry=MetricsRegistry()) as handle:
        port = handle.port
        # Warm the schema memo: measure serving, not the one-off compile.
        client_threads = [threading.Thread(target=client)
                          for __ in range(clients)]
        warm = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
        try:
            warm.request("POST", "/validate", body=body)
            warm.getresponse().read()
        finally:
            warm.close()
        for thread in client_threads:
            thread.start()
        for thread in client_threads:
            thread.join()

    total = clients * requests_per_client
    # Observe in nanoseconds: the power-of-two buckets resolve ns
    # latencies, while sub-second floats would all share bucket 0.
    latency = Histogram("perfguard.serve.latency")
    for elapsed in admitted:
        latency.observe(elapsed * 1e9)
    p99 = latency.percentile(0.99) / 1e9
    if tallies["other"]:
        print("perfguard FAILED: serve burst saw "
              f"{tallies['other']} unexpected non-200/429 answers",
              file=sys.stderr)
        sys.exit(1)
    return {
        "serve_requests": total,
        "serve_admitted": len(admitted),
        "serve_shed_rate": tallies["shed"] / total,
        "serve_p99_vs_deadline": p99 / deadline,
    }


def main():
    floors = json.loads(FLOOR_FILE.read_text(encoding="utf-8"))
    measured = measure()
    problems = []
    for key in ("dense_vs_tree", "dict_vs_tree", "incremental_vs_full"):
        if measured[key] < floors[key]:
            problems.append(
                f"{key}: measured {measured[key]:.2f}x is below the "
                f"committed floor {floors[key]:.2f}x"
            )
    if measured["diff_vs_tree"] > floors["diff_vs_tree_ceiling"]:
        problems.append(
            f"diff_vs_tree: the Figure-family schema diff took "
            f"{measured['diff_vs_tree']:.2f}x the tree validation pass, "
            f"above the committed ceiling "
            f"{floors['diff_vs_tree_ceiling']:.2f}x"
        )
    if measured["cache_hit_us"] > floors["cache_hit_us_ceiling"]:
        problems.append(
            f"cache_hit_us: measured {measured['cache_hit_us']:.2f} us "
            f"exceeds the committed ceiling "
            f"{floors['cache_hit_us_ceiling']:.2f} us"
        )
    if measured["serve_shed_rate"] < floors["serve_shed_rate_floor"]:
        problems.append(
            f"serve_shed_rate: measured {measured['serve_shed_rate']:.1%} "
            f"at 2x overload is below the committed floor "
            f"{floors['serve_shed_rate_floor']:.1%} (admission is "
            "queuing instead of shedding)"
        )
    if measured["serve_p99_vs_deadline"] > (
            floors["serve_p99_vs_deadline_ceiling"]):
        problems.append(
            f"serve_p99_vs_deadline: admitted p99 is "
            f"{measured['serve_p99_vs_deadline']:.2f}x the request "
            f"deadline, above the committed ceiling "
            f"{floors['serve_p99_vs_deadline_ceiling']:.2f}x"
        )

    print(
        f"perfguard (E13 small tier, {measured['elements']} elements): "
        f"dense {measured['dense_vs_tree']:.1f}x tree "
        f"(floor {floors['dense_vs_tree']:.1f}x), "
        f"dict {measured['dict_vs_tree']:.1f}x tree "
        f"(floor {floors['dict_vs_tree']:.1f}x), "
        f"identity cache hit {measured['cache_hit_us']:.2f} us "
        f"(ceiling {floors['cache_hit_us_ceiling']:.1f} us), "
        f"incremental edit {measured['incremental_vs_full']:.0f}x full "
        f"(floor {floors['incremental_vs_full']:.0f}x), "
        f"schema diff {measured['diff_vs_tree']:.1f}x tree pass "
        f"(ceiling {floors['diff_vs_tree_ceiling']:.1f}x); "
        f"serve burst {measured['serve_admitted']}/"
        f"{measured['serve_requests']} admitted, "
        f"shed {measured['serve_shed_rate']:.0%} "
        f"(floor {floors['serve_shed_rate_floor']:.0%}), "
        f"admitted p99 {measured['serve_p99_vs_deadline']:.2f}x deadline "
        f"(ceiling {floors['serve_p99_vs_deadline_ceiling']:.2f}x)"
    )
    if problems:
        for problem in problems:
            print(f"perfguard FAILED: {problem}", file=sys.stderr)
        sys.exit(1)
    print("perfguard OK")


if __name__ == "__main__":
    main()
