"""Smoke test for the CLI observability surface (``make metrics-smoke``).

Runs ``bonxai validate --engine streaming --metrics`` on the paper's
running example (Figure 3 XSD, Figure 1 document) and checks that the
snapshot written to stderr is valid JSON with nonzero cache and DFA-size
metrics, and that ``--budget-states`` refuses a Theorem-9 instance.
Exits nonzero (with a diagnostic) on any failure, so it can gate
``make check``.
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
import pathlib

from repro.cli import main
from repro.paperdata import FIGURE1_XML, figure3_xsd
from repro.xsd import write_xsd


def run_cli(argv):
    stderr = io.StringIO()
    stdout = io.StringIO()
    with contextlib.redirect_stderr(stderr), contextlib.redirect_stdout(
        stdout
    ):
        code = main(argv)
    return code, stdout.getvalue(), stderr.getvalue()


def check(condition, message):
    if not condition:
        print(f"metrics-smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def main_smoke():
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        schema = root / "figure3.xsd"
        document = root / "figure1.xml"
        schema.write_text(write_xsd(figure3_xsd()))
        document.write_text(FIGURE1_XML)

        code, out, err = run_cli(
            [
                "validate",
                str(schema),
                str(document),
                "--engine",
                "streaming",
                "--metrics",
            ]
        )
        check(code == 0, f"validate exited {code}; stderr:\n{err}")
        check("VALID" in out, f"unexpected stdout: {out!r}")
        snapshot = json.loads(err)  # raises (fails the smoke) if not JSON
        counters = snapshot.get("counters", {})
        histograms = snapshot.get("histograms", {})
        cache_traffic = counters.get("engine.cache.hits", 0) + counters.get(
            "engine.cache.misses", 0
        )
        check(cache_traffic > 0, f"no cache traffic in snapshot: {counters}")
        dfa_sizes = histograms.get("engine.compile.dfa_states", {})
        check(
            dfa_sizes.get("count", 0) > 0 and dfa_sizes.get("max", 0) > 0,
            f"no DFA-size metrics in snapshot: {histograms}",
        )
        check(
            counters.get("engine.stream.docs", 0) > 0,
            f"no streaming metrics in snapshot: {counters}",
        )

        # The budget flags must refuse adversarial translation work.
        from repro.families.theorem9 import theorem9_bxsd
        from repro.bonxai.decompile import bxsd_to_schema
        from repro.bonxai.printer import print_schema

        hard = root / "theorem9.bonxai"
        hard.write_text(print_schema(bxsd_to_schema(theorem9_bxsd(8))))
        code, out, err = run_cli(
            ["analyze", str(hard), "--budget-states", "64", "--metrics"]
        )
        check(code == 2, f"budgeted analyze exited {code}, expected 2")
        check(
            "state budget exceeded" in err,
            f"expected a budget refusal on stderr, got:\n{err}",
        )
        # stderr carries the error line followed by the JSON snapshot.
        snapshot = json.loads(err.split("\n", 1)[1])
        check("counters" in snapshot, "snapshot missing after refusal")

    print("metrics-smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main_smoke())
