"""Smoke test for the patch/incremental surface (``make patch-smoke``).

Gates three serving claims end to end, so ``make check`` catches a
broken edit path before the full conformance sweep would:

* **CLI agreement** — ``repro patch`` applied to the paper's running
  example produces byte-identical stdout and the same exit code under
  ``--incremental`` and ``--full``, for both a verdict-preserving and a
  verdict-breaking patch, and ``-o`` writes the same patched document;
* **storm agreement** — a seeded random edit storm (every op kind,
  strangers included) driven through a
  :class:`~repro.engine.incremental.ValidatedDocument` matches the
  from-scratch tree validator verdict-for-verdict, violation-for-
  violation, and type-for-type after every single op;
* **serialization round trip** — the op stream survives
  ``write_patch`` → ``parse_patch`` with application behaviour intact.

Exits nonzero with a diagnostic on any failure.
"""

from __future__ import annotations

import contextlib
import io
import pathlib
import random
import sys
import tempfile

from repro.cli import main
from repro.engine import ValidatedDocument, compile_xsd
from repro.paperdata import FIGURE1_XML, figure3_xsd
from repro.xmlmodel import (
    Patch,
    parse_document,
    parse_patch,
    random_op,
    write_document,
    write_patch,
)
from repro.xsd import write_xsd
from repro.xsd.validator import validate_xsd

GOOD_PATCH = """\
<patch>
  <add sel="2"><section title="Appendix"><italic>fine print</italic></section></add>
  <replace sel="2/0/0"><bold>bolder words</bold></replace>
  <replace sel="2/1" type="@title">Summary</replace>
</patch>
"""

BAD_PATCH = """\
<patch>
  <add sel="1"><stranger/></add>
  <replace sel="0" type="@kind">letter</replace>
</patch>
"""

STORM_EDITS = 120


def run_cli(argv):
    stderr = io.StringIO()
    stdout = io.StringIO()
    with contextlib.redirect_stderr(stderr), contextlib.redirect_stdout(
        stdout
    ):
        code = main(argv)
    return code, stdout.getvalue(), stderr.getvalue()


def check(condition, message):
    if not condition:
        print(f"patch-smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def check_cli(root):
    schema = root / "figure3.xsd"
    document = root / "figure1.xml"
    schema.write_text(write_xsd(figure3_xsd()))
    document.write_text(FIGURE1_XML)

    for name, text, expect_code, expect_word in (
        ("good.xml", GOOD_PATCH, 0, "VALID"),
        ("bad.xml", BAD_PATCH, 1, "INVALID"),
    ):
        patch_file = root / name
        patch_file.write_text(text)
        outputs = {}
        for mode in ("--incremental", "--full"):
            out_file = root / f"patched-{mode.strip('-')}-{name}"
            code, out, err = run_cli([
                "patch", str(document), str(patch_file),
                "--schema", str(schema), mode, "-o", str(out_file),
            ])
            check(code == expect_code,
                  f"{name} {mode}: exited {code}, wanted {expect_code}; "
                  f"stderr:\n{err}")
            check(expect_word in out,
                  f"{name} {mode}: missing {expect_word!r} in {out!r}")
            outputs[mode] = (out.replace(mode.strip("-"), "MODE"),
                             out_file.read_text())
        check(outputs["--incremental"] == outputs["--full"],
              f"{name}: --incremental and --full disagree:\n"
              f"{outputs['--incremental']!r}\nvs\n{outputs['--full']!r}")
    print("cli: --incremental and --full agree on verdicts, reports, "
          "and patched output")


def check_storm():
    xsd = figure3_xsd()
    compiled = compile_xsd(xsd)
    incremental_doc = parse_document(FIGURE1_XML)
    full_doc = parse_document(FIGURE1_XML)
    handle = ValidatedDocument(incremental_doc, compiled)
    rng = random.Random("patch-smoke-storm")
    labels = list(compiled.names) + ["zz-stranger"]
    flips = 0
    last = handle.valid
    for step in range(STORM_EDITS):
        op = random_op(full_doc.root, rng, labels)
        op.apply_incremental(handle)
        op.apply_full(full_doc)
        reference = validate_xsd(xsd, full_doc)
        report = handle.report()
        check(report.valid == reference.valid,
              f"storm step {step}: verdicts diverge on {op!r}")
        check(sorted(str(v) for v in report.violations)
              == sorted(str(v) for v in reference.violations),
              f"storm step {step}: violations diverge on {op!r}:\n"
              f"{report.violations}\nvs\n{reference.violations}")
        check(write_document(handle.document) == write_document(full_doc),
              f"storm step {step}: documents diverge on {op!r}")
        if handle.valid != last:
            flips += 1
            last = handle.valid
    print(f"storm: {STORM_EDITS} random op(s) agree with the tree "
          f"validator ({flips} verdict flip(s))")


def check_roundtrip():
    rng = random.Random("patch-smoke-roundtrip")
    compiled = compile_xsd(figure3_xsd())
    labels = list(compiled.names) + ["zz-stranger"]
    # Generate each op against a rolling document so the stream stays
    # structurally applicable when replayed in order from scratch.
    scratch = parse_document(FIGURE1_XML)
    ops = []
    for __ in range(24):
        op = random_op(scratch.root, rng, labels)
        op.apply_full(scratch)
        ops.append(op)
    patch = Patch(ops)
    reparsed = parse_patch(write_patch(patch))
    check(len(reparsed) == len(patch),
          f"round trip dropped ops: {len(reparsed)} != {len(patch)}")
    check(write_patch(reparsed) == write_patch(patch),
          "round trip is not a fixed point")
    direct = parse_document(FIGURE1_XML)
    replayed = parse_document(FIGURE1_XML)
    patch.apply_full(direct)
    reparsed.apply_full(replayed)
    check(write_document(direct) == write_document(replayed),
          "reparsed patch applies differently")
    print(f"roundtrip: {len(patch)} op(s) survive "
          f"write_patch -> parse_patch")


def main_smoke():
    with tempfile.TemporaryDirectory() as tmp:
        check_cli(pathlib.Path(tmp))
    check_storm()
    check_roundtrip()
    print("patch-smoke OK")


if __name__ == "__main__":
    main_smoke()
