"""Chaos smoke for the fault-isolation layer (``make chaos-smoke``).

Runs a seeded :class:`~repro.resilience.FaultInjector` over a 200-document
batch that mixes valid, malformed, over-limit, and invalid documents, and
asserts the serving claim end to end:

* **zero escaped exceptions** — ``validate_many(policy="isolate")``
  returns one :class:`~repro.resilience.DocumentOutcome` per input, in
  order, no matter what the injector or the documents do;
* **exact isolated-error accounting** — the number of ``injected``
  outcomes equals the injector's own count (the seeded decision stream
  makes both deterministic), the malformed/over-limit documents surface
  as ``parse``/``limit`` errors, and the
  ``engine.batch.failed_docs`` / ``engine.batch.isolated_errors``
  counters advance by exactly the errored total;
* the same holds under a worker pool (ambient injector re-installed in
  pool threads), where the fault *assignment* may differ but containment
  and outcome counts may not.

Exits nonzero with a diagnostic on any failure, so it gates ``make check``.
"""

from __future__ import annotations

import sys

from repro.engine import compile_cached, validate_many
from repro.observability import default_registry
from repro.paperdata import FIGURE1_XML, figure3_xsd
from repro.resilience import FailurePolicy, FaultInjector

BATCH_SIZE = 200
SEED = 2015


def check(condition, message):
    if not condition:
        print(f"chaos-smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def build_batch():
    """200 documents: valid, malformed (every 10th), 3k-deep (every 25th),
    invalid-but-well-formed (every 40th)."""
    malformed = "<document><content></document>"
    deep = "<document>" * 3000 + "</document>" * 3000
    invalid = "<document><bogus/></document>"
    batch = []
    for index in range(BATCH_SIZE):
        if index % 25 == 0:
            batch.append(deep)
        elif index % 10 == 0:
            batch.append(malformed)
        elif index % 40 == 7:
            batch.append(invalid)
        else:
            batch.append(FIGURE1_XML)
    return batch


def classify(outcomes):
    tally = {}
    for outcome in outcomes:
        if outcome.ok:
            kind = "valid" if outcome.valid else "invalid"
        else:
            kind = outcome.error.kind
        tally[kind] = tally.get(kind, 0) + 1
    return tally


def counter(name):
    return default_registry().counter(name).value


def run(workers):
    batch = build_batch()
    # Compile outside the injected extent: the compile site is exercised
    # separately; here every fault must land on one document.
    compiled = compile_cached(figure3_xsd())
    injector = FaultInjector(
        seed=SEED, rates={"parse": 0.08, "validate": 0.05}
    )
    failed_before = counter("engine.batch.failed_docs")
    isolated_before = counter("engine.batch.isolated_errors")
    with injector:
        outcomes = validate_many(
            compiled, batch, policy=FailurePolicy.ISOLATE, workers=workers
        )
    check(
        len(outcomes) == BATCH_SIZE,
        f"expected {BATCH_SIZE} outcomes, got {len(outcomes)}",
    )
    check(
        [outcome.index for outcome in outcomes] == list(range(BATCH_SIZE)),
        "outcomes arrived out of order",
    )
    tally = classify(outcomes)
    injected = tally.get("injected", 0)
    check(
        injected == injector.injected(),
        f"containment leak: injector fired {injector.injected()} faults "
        f"but {injected} outcomes carry kind 'injected' ({tally})",
    )
    check(injector.injected() > 0, "the seeded injector never fired")
    errored = sum(
        count for kind, count in tally.items()
        if kind not in ("valid", "invalid")
    )
    check(
        tally.get("parse", 0) > 0 and tally.get("limit", 0) > 0,
        f"expected malformed and over-limit documents in the tally: {tally}",
    )
    check(
        counter("engine.batch.failed_docs") - failed_before == errored,
        "engine.batch.failed_docs did not advance by the errored count",
    )
    check(
        counter("engine.batch.isolated_errors") - isolated_before == errored,
        "engine.batch.isolated_errors did not advance by the errored count",
    )
    return tally


def main():
    serial = run(workers=None)
    # Serial execution is fully deterministic: same seed, same documents,
    # same per-kind tallies on every run.
    serial_again = run(workers=None)
    check(
        serial == serial_again,
        f"seeded chaos run is not reproducible: {serial} != {serial_again}",
    )
    threaded = run(workers=4)
    check(
        sum(serial.values()) == sum(threaded.values()) == BATCH_SIZE,
        "outcome totals differ between serial and threaded runs",
    )
    print(
        "chaos-smoke OK "
        f"(serial tally: {dict(sorted(serial.items()))}; "
        f"threaded total {sum(threaded.values())} outcomes, "
        f"0 escaped exceptions)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
