# Developer entry points.  `make check` is the gate: tier-1 tests, the
# engine differential/property suites at the thorough hypothesis profile
# (500+ generated differential cases), the CLI observability smoke, the
# fault-injection chaos smoke, the tracing smoke, the conformance smoke
# (oracle fire drill + regression-corpus replay), the patch smoke
# (incremental-vs-full agreement on an edit storm), the serve smoke
# (a live `repro serve` subprocess: status mapping, breaker quarantine,
# SIGTERM drain), the obs smoke (request correlation end to end: one
# trace id across response header, access log, retained trace, and
# exemplar), the diff smoke (repro diff exit codes 0/1/2, separator
# certificate wording, witness-document cross-validation), and the
# perfguard hot-path floor replay; stays well under two minutes.

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: check test differential bench bench-engine metrics-smoke \
	chaos-smoke trace-smoke conformance-smoke patch-smoke serve-smoke \
	obs-smoke diff-smoke conformance perfguard

check: test differential metrics-smoke chaos-smoke trace-smoke \
	conformance-smoke patch-smoke serve-smoke obs-smoke diff-smoke \
	perfguard

test:
	$(PYTEST) -x -q

differential:
	HYPOTHESIS_PROFILE=thorough $(PYTEST) -q -m differential

metrics-smoke:
	PYTHONPATH=src python scripts/metrics_smoke.py

chaos-smoke:
	PYTHONPATH=src python scripts/chaos_smoke.py

trace-smoke:
	PYTHONPATH=src python scripts/trace_smoke.py

conformance-smoke:
	PYTHONPATH=src python scripts/conformance_smoke.py

# Patch/incremental surface: CLI mode agreement, a random edit storm
# against the tree validator, and the patch serialization round trip.
patch-smoke:
	PYTHONPATH=src python scripts/patch_smoke.py

# Serving surface: a real `repro serve` subprocess driven over sockets —
# 200/422/503 status mapping, breaker quarantine fail-fast, metrics
# scrape, SIGTERM graceful drain.
serve-smoke:
	PYTHONPATH=src python scripts/serve_smoke.py

# Request-observability surface: traceparent propagation, tail-sampled
# trace retention, exemplars, access log, and the repro top/traces
# viewers against a live daemon.
obs-smoke:
	PYTHONPATH=src python scripts/obs_smoke.py

# Schema-diff surface: repro diff on real schema files — cross-formalism
# equivalence (exit 0), a separator certificate with a machine-verified
# witness document (exit 1), error/budget handling (exit 2), and the
# JSON shape.
diff-smoke:
	PYTHONPATH=src python scripts/diff_smoke.py

# Engine hot-path regression guard: replays the E13 small tier against
# the committed floors in benchmarks/results/perfguard_floor.json.
perfguard:
	PYTHONPATH=src:. python scripts/perfguard.py

# The full acceptance sweep (the smoke runs a miniature of it).
conformance:
	PYTHONPATH=src python -m repro.cli conformance --seed 0 --cases 500

bench:
	$(PYTEST) -q benchmarks/ -s

bench-engine:
	$(PYTEST) -q benchmarks/bench_e13_engine.py -s
