# Developer entry points.  `make check` is the gate: tier-1 tests plus the
# engine differential/property suites at the thorough hypothesis profile
# (500+ generated differential cases); stays well under two minutes.

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: check test differential bench bench-engine

check: test differential

test:
	$(PYTEST) -x -q

differential:
	HYPOTHESIS_PROFILE=thorough $(PYTEST) -q -m differential

bench:
	$(PYTEST) -q benchmarks/ -s

bench-engine:
	$(PYTEST) -q benchmarks/bench_e13_engine.py -s
